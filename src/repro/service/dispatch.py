"""Affinity-aware shard dispatch: pinned workers, acked deltas, live re-prime.

PR 4 made shards worker-resident, but left three scheduling terms on the
warm-path bill:

* ``pool.map`` scattered shard tasks across whichever workers were idle, so a
  shard ended up resident (and deserialized) in *several* processes and a
  rebalanced task hit a cold worker;
* delta ships covered floor -> current, so a hot shard re-transferred its
  cached wires every pass until the floor advanced;
* a plan change re-primed the process pool by *recreating* it, losing every
  resident shard and every warm OS page.

This module closes all three with one object, the :class:`AffinityDispatcher`:

* **Worker lanes.**  Each worker runs behind its own single-process
  executor (a :class:`WorkerLane`).  A task submitted to a lane always lands
  in the same OS process, which is the property everything else builds on.
* **Rendezvous routing.**  Shards are assigned to lanes by rendezvous
  (highest-random-weight) hashing over the stable lane names: every shard is
  resident on exactly one worker, routing needs no coordination or stored
  table, and growing/shrinking the lane set moves only the shards whose
  winning lane actually changed (:meth:`AffinityDispatcher.resize`).
* **Acked-version handshake.**  Workers return the shard version they
  applied with every result; the dispatcher records it per (lane, store,
  shard) and :meth:`~repro.protocol.shards.ShardedCiphertextStore.ship_plan`
  then builds deltas against that ack -- a warm unchanged shard ships zero
  bytes.  A lane that dies (or answers :class:`~repro.protocol.shards.StaleResidentShard`)
  has its acks reset, so its replacement worker transparently falls back to a
  full spool bootstrap.
* **In-place re-prime.**  A plan change is broadcast to the *live* lanes as
  an ordinary priming task (:func:`~repro.protocol.matching._dispatch_worker_prime`)
  instead of restarting the pool: the lane set is created exactly once per
  session, however often the standing zones churn.

The engine consumes this through
:meth:`~repro.protocol.matching.MatchingEngine._evaluate_process_affinity`;
sessions switch it on via ``ServiceConfig(affinity=True)`` (the default for
sharded process deployments) and can fall back to the PR 4 path with
``affinity=False``.
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import time
import zlib
from typing import Any, Callable, Optional

from repro.protocol.matching import _dispatch_worker_evict, _dispatch_worker_prime
from repro.service.faults import _delayed_call
from repro.service.resilience import AutoscalePolicy, ResilienceRuntime, TaskDeadlineExceeded

__all__ = ["AffinityDispatcher", "WorkerLane", "rendezvous_owner"]


def rendezvous_owner(names: list[str], store_token: str, shard_id: int) -> str:
    """The lane owning ``(store_token, shard_id)`` under rendezvous hashing.

    Every candidate lane scores ``crc32(name | store | shard)`` and the
    highest score wins.  The scheme is stateless and stable: adding or
    removing a lane only reassigns the keys whose winner changed (in
    expectation ``1/n`` of them), which is exactly the "minimal movement"
    property the rebalance tests assert.  CRC32 rather than :func:`hash` so
    the assignment is identical across interpreter runs (no hash salting).
    """
    if not names:
        raise ValueError("rendezvous hashing needs at least one lane")
    suffix = f"|{store_token}|{shard_id}".encode("utf-8")
    return max(names, key=lambda name: (zlib.crc32(name.encode("utf-8") + suffix), name))


class WorkerLane:
    """One pinned worker: a single-process executor plus its handshake state.

    The lane's ``name`` is its identity in the rendezvous hash; it survives
    respawns, so a replacement worker inherits exactly the shards its dead
    predecessor owned (and, with the acks cleared, full-ships them on first
    contact).
    """

    def __init__(self, name: str):
        self.name = name
        self.executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
        #: The plan version this lane's worker currently holds (None = unprimed).
        self.primed_version: Optional[int] = None
        #: (store_token, shard_id) -> shard version the worker confirmed applied.
        self.acked: dict[tuple[str, int], int] = {}
        #: Times this lane's process was replaced after dying.
        self.respawns = 0

    def start(self) -> None:
        self.executor = concurrent.futures.ProcessPoolExecutor(max_workers=1)

    def kill_processes(self, join_timeout: float = 5.0) -> int:
        """SIGKILL this lane's worker process(es); returns how many were shot.

        ``Executor.shutdown(wait=False)`` only *asks* workers to exit -- a
        worker wedged inside a task never reads the request and leaks.  A
        deadline hit therefore escalates to SIGKILL before the executor is
        discarded; the short join keeps zombies from accumulating.
        """
        processes = list(getattr(self.executor, "_processes", {}).values()) if self.executor else []
        killed = 0
        for process in processes:
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGKILL)
                    killed += 1
                except OSError:
                    pass
        deadline = time.time() + join_timeout
        for process in processes:
            process.join(max(0.0, deadline - time.time()))
        return killed

    def respawn(self) -> None:
        """Replace a dead worker process; the lane identity (and shard
        ownership) is unchanged, but the handshake state resets so every owned
        shard re-ships from its spool floor.  The old process is SIGKILLed
        first: for a *dead* worker that is a no-op, for a *hung* one it is the
        only thing that actually frees the process (and avoids the leak a
        bare ``shutdown(wait=False)`` would leave)."""
        if self.executor is not None:
            self.kill_processes()
            self.executor.shutdown(wait=False)
        self.start()
        self.primed_version = None
        self.acked.clear()
        self.respawns += 1

    def shutdown(self, wait: bool = True, grace: float = 5.0) -> None:
        """Shut the lane down in bounded time.

        Queued tasks are cancelled and the worker gets ``grace`` seconds to
        finish its current task and exit; one still alive after that is hung
        inside a task and is SIGKILLed -- closing a session must never wait
        out a stuck pairing computation (``shutdown(wait=True)`` alone would
        sleep until the wedged task returned, which may be never).
        """
        if self.executor is None:
            return
        executor, self.executor = self.executor, None
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        if not wait:
            return
        deadline = time.time() + grace
        for process in processes:
            process.join(max(0.0, deadline - time.time()))
        hung = [p for p in processes if p.is_alive()]
        for process in hung:
            if process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except OSError:
                    pass
        for process in hung:
            process.join(5.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerLane({self.name!r}, primed={self.primed_version}, acked={len(self.acked)})"


class AffinityDispatcher:
    """Routes shard tasks to pinned worker lanes (see the module docstring).

    Parameters
    ----------
    workers:
        Number of lanes.  Changeable later via :meth:`resize` (rendezvous
        keeps the reshuffle minimal).
    ack_deltas:
        When False, :meth:`acked_version` always answers ``None`` and every
        shipment falls back to PR 4's floor-based deltas -- affinity routing
        and in-place re-priming stay active.  The ``--no-ack-deltas`` CLI knob
        maps here; mostly useful for A/B-ing the handshake's contribution.
    resilience:
        The session's :class:`~repro.service.resilience.ResilienceRuntime`.
        Every lane wait goes through :meth:`result_within` under its task
        deadline, and lane failures feed its strike ledger.  A private
        default-policy runtime is created when none is supplied, so no
        dispatcher ever waits unboundedly.
    fault_injector:
        Optional :class:`~repro.service.faults.FaultInjector`: lane tasks are
        then subject to the plan's kill/hang/delay faults and ack recording to
        its drop/corrupt faults.  ``None`` in production.
    autoscale:
        Optional :class:`~repro.service.resilience.AutoscalePolicy`: the
        engine's affinity pass feeds per-lane load samples through
        :meth:`observe_load` and calls :meth:`maybe_autoscale` between
        passes, which grows/shrinks the lane set via :meth:`resize` under the
        policy's hysteresis.  ``None`` (default) keeps the lane count fixed.
    """

    def __init__(
        self,
        workers: int,
        ack_deltas: bool = True,
        resilience: Optional[ResilienceRuntime] = None,
        fault_injector=None,
        autoscale: Optional[AutoscalePolicy] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.ack_deltas = ack_deltas
        self.resilience = resilience if resilience is not None else ResilienceRuntime()
        self.fault_injector = fault_injector
        self.autoscale = autoscale
        self._lanes: list[WorkerLane] = []
        self._closed = False
        # (store_token, shard_id) -> lane name, for rebalance accounting: the
        # rendezvous hash needs no table, but resize() must know which keys
        # this dispatcher has actually routed to evict/reassign them.
        self._routed: dict[tuple[str, int], str] = {}
        #: Lifecycle counters, surfaced through the session stats.
        self.pool_starts = 0
        self.inplace_reprimes = 0
        self.lane_respawns = 0
        self.shards_reassigned = 0
        #: Autoscale state: per-pass load accumulators, hysteresis counters,
        #: and the applied resize events (surfaced through the session stats).
        self.lane_resizes = 0
        self.lanes_added = 0
        self.lanes_removed = 0
        self.resize_events: list[dict] = []
        self._pass_index = 0
        self._pass_depth = 0
        self._pass_samples = 0
        self._pass_receipt_seconds = 0.0
        self._scale_cooldown = 0
        self._calm_streak = 0

    # ------------------------------------------------------------------
    # Lifecycle / priming
    # ------------------------------------------------------------------
    def ensure(self, prime_version: int, initargs: tuple) -> int:
        """Make every lane live and primed at ``prime_version``.

        Lanes are created exactly once (the session's single pool start);
        afterwards a changed plan version is *broadcast* to the running
        workers as a priming task -- resident shards and warm pages survive.
        Returns 1 when such an in-place re-prime happened, 0 otherwise (cold
        start, or nothing to do), which the engine folds into
        :class:`~repro.protocol.matching.PassStats.inplace_reprimes`.
        """
        self._ensure_open()
        if not self._lanes:
            self._lanes = [WorkerLane(f"worker-{index}") for index in range(self.workers)]
            for lane in self._lanes:
                lane.start()
            self.pool_starts += 1
        inplace = 0
        primings = []
        for lane in self._lanes:
            if lane.primed_version != prime_version:
                if lane.primed_version is not None:
                    inplace += 1
                primings.append((lane, self.submit(lane, _dispatch_worker_prime, *initargs)))
        for lane, future in primings:
            self.result_within(lane, future, label="prime")
            lane.primed_version = prime_version
        if inplace:
            self.inplace_reprimes += 1
        return 1 if inplace else 0

    def resize(self, workers: int) -> dict[tuple[str, int], tuple[str, str]]:
        """Grow or shrink the lane set to ``workers`` lanes.

        Rendezvous hashing guarantees the reshuffle is minimal: a key moves
        only when its winning lane changed (shrink: keys of the removed lanes;
        grow: keys the new lanes win).  Moved shards are evicted from their
        old lane's resident cache (best effort) and their acks dropped, so the
        new owner bootstraps from the spool on first contact.  Returns the
        moved keys as ``{(store, shard): (old lane, new lane)}`` -- the
        rebalance tests assert its minimality.
        """
        self._ensure_open()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if not self._lanes:
            # Nothing routed yet; the next ensure() starts the right count.
            self.workers = workers
            return {}
        if workers == len(self._lanes):
            self.workers = workers
            return {}
        old_lanes = {lane.name: lane for lane in self._lanes}
        if workers > len(self._lanes):
            for index in range(len(self._lanes), workers):
                lane = WorkerLane(f"worker-{index}")
                lane.start()
                self._lanes.append(lane)
        else:
            for lane in self._lanes[workers:]:
                lane.shutdown(wait=False)
            del self._lanes[workers:]
        self.workers = workers
        names = [lane.name for lane in self._lanes]
        by_name = {lane.name: lane for lane in self._lanes}
        moved: dict[tuple[str, int], tuple[str, str]] = {}
        evictions: dict[str, list[tuple[str, int]]] = {}
        for key, old_name in list(self._routed.items()):
            new_name = rendezvous_owner(names, *key)
            if new_name == old_name:
                continue
            moved[key] = (old_name, new_name)
            self._routed[key] = new_name
            survivor = by_name.get(old_name)
            if survivor is not None:
                survivor.acked.pop(key, None)
                evictions.setdefault(old_name, []).append(key)
            else:
                old_lanes[old_name].acked.pop(key, None)
        # Evict moved shards from surviving old owners so worker memory
        # tracks ownership (a removed lane's process is already gone).
        for name, keys in evictions.items():
            lane = by_name[name]
            if lane.executor is not None and lane.primed_version is not None:
                try:
                    self.result_within(
                        lane,
                        lane.executor.submit(_dispatch_worker_evict, tuple(keys)),
                        label="evict",
                    )
                except (concurrent.futures.BrokenExecutor, TaskDeadlineExceeded):
                    # result_within already respawned the lane; eviction is
                    # best effort (the replacement worker starts empty anyway).
                    pass
        self.shards_reassigned += len(moved)
        return moved

    # ------------------------------------------------------------------
    # Load-driven autoscale
    # ------------------------------------------------------------------
    def observe_load(self, lane: WorkerLane, depth: int, receipt_seconds: float) -> None:
        """Record one lane's load sample for the current evaluation pass.

        ``depth`` is the lane's queue depth this pass (match tasks routed to
        it), ``receipt_seconds`` the submit-to-result receipt latency of its
        worklist.  Cheap no-op without an autoscale policy.
        """
        if self.autoscale is None:
            return
        self._pass_depth += depth
        self._pass_samples += 1
        self._pass_receipt_seconds += receipt_seconds

    def maybe_autoscale(self) -> Optional[dict]:
        """Close out one pass's load window and maybe resize the lane set.

        Called by the engine after each affinity pass.  Grows by
        ``policy.step`` when the pass ran hot (average per-lane depth above
        ``grow_depth``, or mean receipt latency above ``grow_latency_ms``);
        shrinks only after ``calm_passes`` consecutive calm passes; holds
        still for ``cooldown_passes`` after any resize.  Returns the resize
        event applied (also appended to :attr:`resize_events`), or None.
        """
        policy = self.autoscale
        depth_sum = self._pass_depth
        samples = self._pass_samples
        receipt_total = self._pass_receipt_seconds
        self._pass_depth = 0
        self._pass_samples = 0
        self._pass_receipt_seconds = 0.0
        if policy is None or not self._lanes or samples == 0:
            return None
        self._pass_index += 1
        lanes_now = len(self._lanes)
        # Idle lanes contribute depth 0: dividing by the live lane count (not
        # the sample count) makes "half the lanes saw two tasks" read as an
        # average depth of 1, which is the balance signal we actually want.
        avg_depth = depth_sum / lanes_now
        avg_receipt_ms = (receipt_total / samples) * 1000.0
        if self._scale_cooldown > 0:
            self._scale_cooldown -= 1
            return None
        hot = avg_depth > policy.grow_depth or (
            policy.grow_latency_ms > 0 and avg_receipt_ms > policy.grow_latency_ms
        )
        action: Optional[str] = None
        target = lanes_now
        if hot and lanes_now < policy.max_lanes:
            action = "grow"
            target = min(policy.max_lanes, lanes_now + policy.step)
            self._calm_streak = 0
        elif not hot and avg_depth < policy.shrink_depth:
            self._calm_streak += 1
            if self._calm_streak >= policy.calm_passes and lanes_now > policy.min_lanes:
                action = "shrink"
                target = max(policy.min_lanes, lanes_now - policy.step)
                self._calm_streak = 0
        else:
            self._calm_streak = 0
        if action is None or target == lanes_now:
            return None
        moved = self.resize(target)
        self._scale_cooldown = policy.cooldown_passes
        self.lane_resizes += 1
        if target > lanes_now:
            self.lanes_added += target - lanes_now
        else:
            self.lanes_removed += lanes_now - target
        event = {
            "pass": self._pass_index,
            "action": action,
            "from_lanes": lanes_now,
            "to_lanes": target,
            "avg_depth": round(avg_depth, 3),
            "avg_receipt_ms": round(avg_receipt_ms, 3),
            "shards_moved": len(moved),
        }
        self.resize_events.append(event)
        return event

    def close(self) -> None:
        """Shut every lane down (idempotent); later use raises RuntimeError."""
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes:
            lane.shutdown(wait=True)
        self._lanes = []

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("affinity dispatcher is closed; create a new session to keep matching")

    # ------------------------------------------------------------------
    # Routing and the acked-version handshake
    # ------------------------------------------------------------------
    def lane_for(self, store_token: str, shard_id: int) -> WorkerLane:
        """The lane pinned to ``(store_token, shard_id)``; lanes must be live."""
        if not self._lanes:
            raise RuntimeError("dispatcher has no live lanes; call ensure() first")
        key = (store_token, shard_id)
        name = rendezvous_owner([lane.name for lane in self._lanes], store_token, shard_id)
        self._routed[key] = name
        for lane in self._lanes:
            if lane.name == name:
                return lane
        raise AssertionError(f"rendezvous produced unknown lane {name!r}")  # pragma: no cover

    def acked_version(self, lane: WorkerLane, store_token: str, shard_id: int) -> Optional[int]:
        """The shard version ``lane``'s worker confirmed, or None (full ship)."""
        if not self.ack_deltas:
            return None
        return lane.acked.get((store_token, shard_id))

    def record_ack(self, lane: WorkerLane, store_token: str, shard_id: int, version: int) -> None:
        """Record that ``lane``'s worker applied ``shard_id`` at ``version``.

        Under fault injection the ack may be dropped (the next delta is merely
        larger -- shipments are idempotent) or corrupted (caught downstream by
        ``ship_plan``'s anchor guard or the worker's ``StaleResidentShard``).
        """
        if self.fault_injector is not None:
            record, version = self.fault_injector.ack_action(lane.name, version)
            if not record:
                return
        lane.acked[(store_token, shard_id)] = version

    def clear_ack(self, lane: WorkerLane, store_token: str, shard_id: int) -> None:
        """Forget one shard's ack (the next shipment re-ships from the floor)."""
        lane.acked.pop((store_token, shard_id), None)

    # ------------------------------------------------------------------
    # Task submission / failure handling
    # ------------------------------------------------------------------
    def submit(self, lane: WorkerLane, fn: Callable, *args: Any) -> concurrent.futures.Future:
        """Submit a task to ``lane``'s pinned worker process.

        A lane whose process already died can reject the submission itself
        (rather than failing the returned future); either way the lane is
        respawned here and the ``BrokenExecutor`` propagates so the caller's
        retry logic runs against the replacement.
        """
        self._ensure_open()
        if lane.executor is None:
            raise RuntimeError(f"lane {lane.name!r} is not running")
        if self.fault_injector is not None:
            action = self.fault_injector.lane_task(lane.name)
            if action is not None:
                if action[0] == "kill":
                    self.fault_injector.kill_lane_process(lane)
                else:  # hang or delay: stall the task inside the worker
                    args = (action[1], fn) + args
                    fn = _delayed_call
        try:
            return lane.executor.submit(fn, *args)
        except concurrent.futures.BrokenExecutor:
            self.mark_broken(lane)
            raise

    def result_within(self, lane: WorkerLane, future: concurrent.futures.Future, label: str = "task") -> Any:
        """Await ``future`` under the policy's task deadline.

        The single bounded-wait choke point of the dispatch layer: no caller
        waits on a lane future directly.  A timeout counts as a deadline hit
        against the lane, SIGKILLs its (hung) worker via respawn and raises
        :class:`~repro.service.resilience.TaskDeadlineExceeded`; a broken pool
        takes the same strike-and-respawn path and re-raises.  Success clears
        the lane's strike ledger.
        """
        try:
            result = future.result(timeout=self.resilience.task_deadline)
        except concurrent.futures.TimeoutError:
            future.cancel()
            self.resilience.record_failure(lane.name, deadline=True)
            self.mark_broken(lane)
            raise TaskDeadlineExceeded(
                f"{label} on lane {lane.name!r} exceeded the "
                f"{self.resilience.task_deadline:.3g}s task deadline",
                lane=lane.name,
            ) from None
        except concurrent.futures.BrokenExecutor:
            self.resilience.record_failure(lane.name)
            self.mark_broken(lane)
            raise
        self.resilience.record_success(lane.name)
        return result

    def mark_broken(self, lane: WorkerLane) -> None:
        """Replace a lane whose process died; its shards full-ship next pass.

        The respawned lane keeps its name -- and therefore its rendezvous
        ownership -- but loses its primed plan and its acks, so the next pass
        primes it and bootstraps its shards from their spool floors.  The
        caller still propagates ``BrokenExecutor`` so the session layer can
        retry the interrupted pass once (PR 4's recovery contract).
        """
        self.lane_respawns += 1
        lane.respawn()

    # ------------------------------------------------------------------
    # Introspection (tests, stats)
    # ------------------------------------------------------------------
    @property
    def lanes(self) -> tuple[WorkerLane, ...]:
        """The live lanes, in creation order (empty before the first ensure)."""
        return tuple(self._lanes)

    def assignment(self, store_token: str, shard_ids: range) -> dict[int, str]:
        """The lane name owning each shard of ``shard_ids`` (pure function)."""
        names = [lane.name for lane in self._lanes] or [
            f"worker-{index}" for index in range(self.workers)
        ]
        return {shard_id: rendezvous_owner(names, store_token, shard_id) for shard_id in shard_ids}

    def __enter__(self) -> "AffinityDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
