"""Deadline / retry / quarantine policy for the process matching tiers.

The dispatch layer (:mod:`repro.service.dispatch`) and the matching engine's
process paths historically handled exactly one fault: a dead worker raising
:class:`concurrent.futures.process.BrokenProcessPool`, caught once per pass by
the session facade.  Every ``future.result()`` waited unboundedly, so a *hung*
worker (as opposed to a dead one) wedged the whole session, and a lane that
kept failing was respawned forever with no memory of its record.

This module is the policy half of the resilience layer:

* :class:`ResiliencePolicy` -- the frozen knob set: per-task deadline applied
  to every lane/pool wait, bounded retries with exponential backoff + jitter,
  K-strikes lane quarantine, a cap on consecutive
  :class:`~repro.protocol.shards.StaleResidentShard` resets per lane, and
  graceful degradation (a pass whose process tier keeps failing is evaluated
  inline and still returns a correct report).
* :class:`ResilienceRuntime` -- the mutable per-session state that applies the
  policy: strike ledgers per lane, quarantine bookkeeping, the seeded jitter
  stream, and the counters (``retries`` / ``deadline_hits`` / ``quarantines``
  / ``degraded_passes`` / ``stale_resets``) surfaced through
  ``PassStats`` → ``MatchReport`` / ``RequestMetrics`` → ``SessionStats``.
* :class:`TaskDeadlineExceeded` -- raised when a bounded wait expires; the
  engine treats it like a broken pool (kill + respawn / retry / degrade), and
  the executor pool drops its plain pool on it just as it does on
  ``BrokenExecutor``.

Quarantining a lane **respawns it under the same name**: lane names are the
rendezvous-hash identities (:func:`repro.service.dispatch.rendezvous_owner`),
so the replacement inherits the quarantined lane's shard ownership and the
assignment stays stable -- quarantine is a health action, not a topology
change.  The quarantine then holds the *lane name* out of strike-amnesty for
``quarantine_passes`` evaluation passes so a persistently sick host is
re-checked rather than trusted immediately.

Import note: :mod:`repro.protocol.matching` uses this module but must not
import it at module scope (``service`` imports ``matching`` during package
init); the engine pulls it in lazily.  This module therefore imports nothing
from the protocol layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "TaskDeadlineExceeded",
    "LaneQuarantined",
    "AutoscalePolicy",
    "ResiliencePolicy",
    "ResilienceRuntime",
]


class TaskDeadlineExceeded(RuntimeError):
    """A bounded wait on a worker task expired.

    Raised by the dispatch/matching layers when ``future.result(timeout=...)``
    times out under the policy's ``task_deadline_seconds``.  Handled exactly
    like a broken pool: the hung workers are killed (a hung process is not
    recovered by ``shutdown(wait=False)``), the lane or pool is respawned,
    and the attempt is retried or degraded inline.
    """

    def __init__(self, message: str, lane: Optional[str] = None):
        super().__init__(message)
        self.lane = lane


class LaneQuarantined(RuntimeError):
    """A lane struck out mid-pass and was respawned under quarantine.

    Raised (or collected) by the engine's affinity pass when a lane's strike
    or stale-reset ledger caps out: the replacement worker is unprimed, so
    the attempt cannot simply resubmit to it -- the pass-level retry re-runs
    through ``ensure()`` against the fresh lane instead.
    """

    def __init__(self, message: str, lane: Optional[str] = None):
        super().__init__(message)
        self.lane = lane


@dataclass(frozen=True)
class AutoscalePolicy:
    """Load-driven lane scaling: when the dispatcher grows/shrinks its lanes.

    The dispatcher samples per-lane queue depth (match tasks per lane) and
    receipt latency (submit-to-result) on every evaluation pass and applies
    this policy between passes, riding on the rendezvous ``resize()`` so only
    reassigned shards re-ship.  Scaling is deliberately hysteretic -- grow
    fast under pressure, shrink only after sustained calm -- because a resize
    costs a pool start (grow) or shard re-ships (both directions).

    Parameters
    ----------
    min_lanes / max_lanes:
        Hard bounds on the lane count; the initial worker count is clamped
        into this band on the first scaled pass.
    grow_depth:
        Grow when the average per-lane task depth of a pass exceeds this.
    grow_latency_ms:
        Also grow when the mean submit-to-result receipt latency of a pass
        exceeds this many milliseconds (``0`` disables the latency trigger).
    shrink_depth:
        A pass with average depth strictly below this counts as *calm*.
    cooldown_passes:
        Passes to hold still after any resize before another is considered.
    calm_passes:
        Consecutive calm passes required before shrinking by ``step``.
    step:
        Lanes added or removed per resize event.
    """

    min_lanes: int = 1
    max_lanes: int = 8
    grow_depth: float = 2.0
    grow_latency_ms: float = 0.0
    shrink_depth: float = 0.75
    cooldown_passes: int = 2
    calm_passes: int = 5
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_lanes < 1:
            raise ValueError("min_lanes must be at least 1")
        if self.max_lanes < self.min_lanes:
            raise ValueError("max_lanes must be >= min_lanes")
        if self.grow_depth <= 0:
            raise ValueError("grow_depth must be positive")
        if self.grow_latency_ms < 0:
            raise ValueError("grow_latency_ms must be non-negative (0 disables)")
        if not 0 <= self.shrink_depth < self.grow_depth:
            raise ValueError("shrink_depth must satisfy 0 <= shrink_depth < grow_depth")
        if self.cooldown_passes < 0:
            raise ValueError("cooldown_passes must be non-negative")
        if self.calm_passes < 1:
            raise ValueError("calm_passes must be at least 1")
        if self.step < 1:
            raise ValueError("step must be at least 1")


@dataclass(frozen=True)
class ResiliencePolicy:
    """The resilience knob set of one session (see module docstring).

    Parameters
    ----------
    task_deadline_seconds:
        Upper bound on every individual wait for a worker-task result
        (prime, match, evict, plain-pool chunk).  ``None`` disables deadlines
        and restores the historical unbounded waits -- only sensible in
        debuggers.
    max_retries:
        How many times a failing process attempt (broken pool, deadline hit)
        is retried before the pass degrades inline.  ``0`` degrades on the
        first failure.
    backoff_base_seconds / backoff_cap_seconds / backoff_jitter:
        Exponential backoff between retries: attempt *n* sleeps
        ``min(cap, base * 2**n)`` plus a seeded jitter fraction.  The default
        base is small -- respawning a lane already costs a pool start-up, the
        backoff only needs to let an overloaded host breathe.
    quarantine_strikes:
        Consecutive failures (deadline hits, broken lanes) a single lane may
        accumulate before it is quarantined.
    quarantine_passes:
        For how many evaluation passes a quarantined lane name keeps its
        strike ledger primed at ``quarantine_strikes - 1`` (one more failure
        re-quarantines immediately) instead of getting full amnesty.
    max_stale_resets:
        Consecutive :class:`~repro.protocol.shards.StaleResidentShard` resets
        a lane may trigger before being treated as a strike-out and
        quarantined -- bounds the forged/garbled-ack fallback loop.
    degrade_inline:
        When True (default), a pass that exhausts its retries falls back to
        inline evaluation on the session thread and still returns a correct
        report (marked via ``degraded_passes``).  When False the final error
        propagates to the caller.
    """

    task_deadline_seconds: Optional[float] = 60.0
    max_retries: int = 2
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    backoff_jitter: float = 0.25
    quarantine_strikes: int = 3
    quarantine_passes: int = 2
    max_stale_resets: int = 3
    degrade_inline: bool = True

    def __post_init__(self) -> None:
        if self.task_deadline_seconds is not None and self.task_deadline_seconds <= 0:
            raise ValueError("task_deadline_seconds must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if not 0 <= self.backoff_jitter <= 1:
            raise ValueError("backoff_jitter must be within [0, 1]")
        if self.quarantine_strikes < 1:
            raise ValueError("quarantine_strikes must be at least 1")
        if self.quarantine_passes < 0:
            raise ValueError("quarantine_passes must be non-negative")
        if self.max_stale_resets < 1:
            raise ValueError("max_stale_resets must be at least 1")

    def backoff_seconds(self, attempt: int, jitter: float) -> float:
        """Sleep before retry ``attempt`` (0-based), with ``jitter`` in [0, 1)."""
        base = min(self.backoff_cap_seconds, self.backoff_base_seconds * (2.0**attempt))
        return base * (1.0 + self.backoff_jitter * jitter)


@dataclass
class ResilienceRuntime:
    """Mutable per-session application of a :class:`ResiliencePolicy`.

    One instance lives on the session's pool provider and is shared by the
    dispatcher and the matching engine; a session without a provider (bare
    engine) gets a private one from the engine.  All state is keyed by lane
    *name* so it survives lane respawns -- the whole point of the strike
    ledger is remembering a host's record across its reincarnations.
    """

    policy: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    seed: Optional[int] = None

    #: Counters surfaced through PassStats/RequestMetrics/SessionStats.
    retries: int = 0
    deadline_hits: int = 0
    quarantines: int = 0
    degraded_passes: int = 0
    stale_resets: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._strikes: Dict[str, int] = {}
        self._stale_streaks: Dict[str, int] = {}
        self._cooldowns: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Deadlines and backoff
    # ------------------------------------------------------------------
    @property
    def task_deadline(self) -> Optional[float]:
        """The timeout to pass to every ``future.result()`` (None = unbounded)."""
        return self.policy.task_deadline_seconds

    def backoff_seconds(self, attempt: int) -> float:
        """Seeded-jitter backoff before retry ``attempt`` (0-based)."""
        return self.policy.backoff_seconds(attempt, self._rng.random())

    # ------------------------------------------------------------------
    # Strike ledger
    # ------------------------------------------------------------------
    def record_failure(self, lane: str, deadline: bool = False) -> bool:
        """Record one failure of ``lane``; True when it must be quarantined.

        ``deadline=True`` marks the failure as a deadline hit (counted
        separately).  Quarantine resets the stale streak -- the respawned
        lane starts with a clean spool state anyway.
        """
        if deadline:
            self.deadline_hits += 1
        strikes = self._strikes.get(lane, 0) + 1
        self._strikes[lane] = strikes
        if strikes >= self.policy.quarantine_strikes:
            self._quarantine(lane)
            return True
        return False

    def record_stale(self, lane: str) -> bool:
        """Record one ``StaleResidentShard`` reset; True when the streak caps out.

        Stale resets are normal after a respawn (acks reset, floor reship) --
        only an unbroken streak of them *across passes*, the signature of a
        lane that keeps garbling its acks, converts into a quarantine.  The
        streak is therefore cleared by :meth:`clear_stale` (a pass where the
        lane needed no reset), not by individual task successes: the in-pass
        floor reship that resolves each reset always succeeds, and must not
        grant amnesty for the next pass's reset.
        """
        self.stale_resets += 1
        streak = self._stale_streaks.get(lane, 0) + 1
        self._stale_streaks[lane] = streak
        if streak >= self.policy.max_stale_resets:
            self._quarantine(lane)
            return True
        return False

    def clear_stale(self, lane: str) -> None:
        """``lane`` completed a pass without a stale reset: end its streak."""
        self._stale_streaks.pop(lane, None)

    def record_success(self, lane: str) -> None:
        """A completed task on ``lane``: clear its failure strikes."""
        self._strikes.pop(lane, None)

    def record_degraded_pass(self) -> None:
        """A pass fell back to inline evaluation after exhausting retries."""
        self.degraded_passes += 1

    def record_retry(self) -> None:
        """A failing process attempt is being retried."""
        self.retries += 1

    def _quarantine(self, lane: str) -> None:
        self.quarantines += 1
        self._stale_streaks.pop(lane, None)
        # Keep the ledger one strike below the bar for the cooldown window:
        # a quarantined host that fails again right after respawn goes
        # straight back into quarantine instead of earning three fresh lives.
        if self.policy.quarantine_passes > 0:
            self._strikes[lane] = self.policy.quarantine_strikes - 1
            self._cooldowns[lane] = self.policy.quarantine_passes
        else:
            self._strikes.pop(lane, None)

    def begin_pass(self) -> None:
        """Advance the quarantine cooldowns at the start of an evaluation pass."""
        expired = []
        for lane, remaining in self._cooldowns.items():
            if remaining <= 1:
                expired.append(lane)
            else:
                self._cooldowns[lane] = remaining - 1
        for lane in expired:
            del self._cooldowns[lane]
            self._strikes.pop(lane, None)

    def strikes(self, lane: str) -> int:
        """Current strike count of ``lane`` (0 when clean)."""
        return self._strikes.get(lane, 0)

    def stale_streak(self, lane: str) -> int:
        """Current consecutive-stale-reset streak of ``lane``."""
        return self._stale_streaks.get(lane, 0)

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict (for metrics/session stats)."""
        return {
            "retries": self.retries,
            "deadline_hits": self.deadline_hits,
            "quarantines": self.quarantines,
            "degraded_passes": self.degraded_passes,
            "stale_resets": self.stale_resets,
        }
