"""Per-client exactly-once admission state for the network tier.

The :class:`AdmissionLedger` is the server side of the retry contract: every
network request from a handshaken client carries a ``(client_id, request_id)``
pair, and the ledger remembers -- per client epoch -- which of those pairs are
currently executing and what the finished ones answered.  The admit stage
consults it before queueing work:

* a pair with a cached response is answered from the cache (the client's
  retry of a request the server already ran -- the response is replayed, the
  request is **not** re-executed);
* a pair that is still executing parks the duplicate as a waiter -- both the
  original connection and the retrying one get the single execution's answer;
* anything else is new work.

The ledger lives on the :class:`~repro.service.service.AlertService` rather
than the server because crash recovery must rebuild it: journal entries carry
their origin pairs, so replay re-caches the response each origin is owed.  A
journaled-then-crashed request that the client retries after the restart gets
its cached response, not a second execution.

Boundedness: clients piggyback an ``acked`` low-watermark on every request
(all ids at or below it have been answered), which prunes the cache; a
``max_cached`` cap per client bounds the worst case of a client that never
acks (oldest ids are evicted first -- exactly the ones a well-behaved client
can no longer retry).

Error responses are deliberately **not** cached: a failed request is answered
but may legitimately be retried for a fresh attempt (e.g. after a transient
journal write failure), so only successful executions are pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["AdmissionDecision", "ClientAdmissionState", "AdmissionLedger"]

#: One journal-entry origin: ``(client_id, epoch, request_id)``.
Origin = Tuple[str, int, int]


@dataclass
class ClientAdmissionState:
    """What the ledger knows about one client instance (one epoch)."""

    epoch: int
    acked: int = 0
    #: request_id -> cached response payload (wire form), successes only.
    cache: Dict[int, dict] = field(default_factory=dict)
    #: request ids admitted but not yet answered.
    executing: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of :meth:`AdmissionLedger.admit` for one incoming request.

    Exactly one of the flags is set: ``cached`` (answer from ``response``),
    ``duplicate`` (park as waiter on the in-flight execution), ``stale``
    (below the acked watermark with no cached answer -- a protocol error),
    or none of them (``fresh`` -- admit as new work).
    """

    cached: bool = False
    duplicate: bool = False
    stale: bool = False
    response: Optional[dict] = None

    @property
    def fresh(self) -> bool:
        return not (self.cached or self.duplicate or self.stale)


class AdmissionLedger:
    """The per-client idempotency table; all methods are event-loop-thread only."""

    def __init__(self, max_cached: int = 4096):
        if max_cached < 1:
            raise ValueError("max_cached must be >= 1")
        self.max_cached = max_cached
        self._clients: Dict[str, ClientAdmissionState] = {}

    # -- handshake ------------------------------------------------------
    def register(self, client_id: str, epoch: int) -> Tuple[bool, int]:
        """Bind a hello to its state: ``(resumed, acked)``.

        Same epoch resumes the existing state (reconnect / post-restart
        replay); a different epoch is a fresh client instance reusing the id,
        whose old state is discarded.
        """
        state = self._clients.get(client_id)
        if state is not None and state.epoch == epoch:
            return True, state.acked
        self._clients[client_id] = ClientAdmissionState(epoch=epoch)
        return False, 0

    def state_for(self, client_id: str) -> Optional[ClientAdmissionState]:
        return self._clients.get(client_id)

    # -- admit path -----------------------------------------------------
    def classify(self, client_id: str, request_id: int) -> AdmissionDecision:
        """Classify one incoming ``(client_id, request_id)``; side-effect-free.

        A fresh pair is only marked executing by an explicit :meth:`begin` --
        the server calls that *after* its backpressure checks pass, so a
        BUSY-rejected request (which the client retries under the same id)
        never gets stuck looking like an in-flight duplicate.
        """
        state = self._clients.get(client_id)
        if state is None:
            # No hello on record (e.g. state evicted): treat as fresh but
            # untracked -- the caller only tracks identified clients.
            return AdmissionDecision()
        cached = state.cache.get(request_id)
        if cached is not None:
            return AdmissionDecision(cached=True, response=cached)
        if request_id in state.executing:
            return AdmissionDecision(duplicate=True)
        if request_id <= state.acked:
            return AdmissionDecision(stale=True)
        return AdmissionDecision()

    def begin(self, client_id: str, request_id: int) -> None:
        """Mark an admitted pair as executing (until :meth:`complete`)."""
        state = self._clients.get(client_id)
        if state is not None:
            state.executing.add(request_id)

    def complete(
        self, client_id: str, epoch: int, request_id: int, response: Optional[dict], is_error: bool
    ) -> None:
        """Record one execution's outcome; successes are cached for retries."""
        state = self._clients.get(client_id)
        if state is None or state.epoch != epoch:
            return  # client re-registered under a new epoch mid-flight
        state.executing.discard(request_id)
        if is_error or response is None or request_id <= state.acked:
            return
        state.cache[request_id] = response
        self._evict(state)

    def advance(self, client_id: str, acked: int) -> None:
        """Apply a client's piggybacked answered low-watermark."""
        state = self._clients.get(client_id)
        if state is None or acked <= state.acked:
            return
        previous = state.acked
        state.acked = acked
        # Hot path: the watermark usually moves by a handful of ids per
        # request (pipelining depth), so prune the covered id range rather
        # than scanning the whole cache -- unless the jump is larger than
        # the cache itself (e.g. a resumed client catching up after replay).
        if acked - previous <= len(state.cache):
            for request_id in range(previous + 1, acked + 1):
                state.cache.pop(request_id, None)
        else:
            for request_id in [rid for rid in state.cache if rid <= acked]:
                del state.cache[request_id]

    def _evict(self, state: ClientAdmissionState) -> None:
        while len(state.cache) > self.max_cached:
            del state.cache[min(state.cache)]

    # -- crash recovery -------------------------------------------------
    def record_replayed(self, origin: Origin, response: dict) -> None:
        """Re-cache a journal-replayed execution's response for its origin.

        Later journal entries win on epoch conflicts: an origin with a newer
        epoch than the recorded state resets the client (mirroring what
        :meth:`register` did live), an older one is a stale leftover.
        """
        client_id, epoch, request_id = origin
        state = self._clients.get(client_id)
        if state is None or state.epoch != epoch:
            if state is not None and epoch < state.epoch:
                return
            state = ClientAdmissionState(epoch=epoch)
            self._clients[client_id] = state
        if request_id <= state.acked:
            return
        state.cache[request_id] = response
        self._evict(state)

    # -- snapshot forms -------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-compatible snapshot form (executing sets are transient and
        deliberately dropped -- after a crash those requests never answered)."""
        clients: List[dict] = []
        for client_id in sorted(self._clients):
            state = self._clients[client_id]
            clients.append(
                {
                    "client_id": client_id,
                    "epoch": state.epoch,
                    "acked": state.acked,
                    "cache": [[rid, state.cache[rid]] for rid in sorted(state.cache)],
                }
            )
        return {"max_cached": self.max_cached, "clients": clients}

    @classmethod
    def from_payload(cls, payload: Optional[dict]) -> "AdmissionLedger":
        if not payload:
            return cls()
        ledger = cls(max_cached=int(payload.get("max_cached", 4096)))
        for entry in payload.get("clients", ()):
            state = ClientAdmissionState(
                epoch=int(entry["epoch"]), acked=int(entry.get("acked", 0))
            )
            for rid, response in entry.get("cache", ()):
                state.cache[int(rid)] = response
            ledger._clients[entry["client_id"]] = state
        return ledger
