"""Shared helpers for per-cell probability vectors.

The encoding schemes only care about the *relative ordering* and skew of the
per-cell alert likelihoods (Section 9 of the paper notes exact values are not
required).  These helpers normalise raw likelihood scores, quantify skew and
compute the Shannon entropy -- the information-theoretic lower bound on the
average Huffman code length, used by the analysis and ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "validate_probability_vector",
    "normalize",
    "entropy_bits",
    "probability_skew",
    "top_k_mass",
]


def validate_probability_vector(values: Sequence[float], allow_zero_sum: bool = False) -> None:
    """Validate a raw likelihood vector.

    Values must be finite and non-negative.  Unless ``allow_zero_sum`` is
    set, at least one value must be strictly positive (otherwise there is no
    information to drive the encoding).
    """
    if len(values) == 0:
        raise ValueError("probability vector must not be empty")
    for i, v in enumerate(values):
        if not math.isfinite(v):
            raise ValueError(f"probability at index {i} is not finite: {v!r}")
        if v < 0:
            raise ValueError(f"probability at index {i} is negative: {v!r}")
    if not allow_zero_sum and sum(values) <= 0:
        raise ValueError("probability vector sums to zero; at least one cell must be likely to alert")


def normalize(values: Sequence[float]) -> list[float]:
    """Scale a non-negative likelihood vector so it sums to one.

    Cells with zero likelihood stay at zero.  A vector of all zeros is mapped
    to the uniform distribution (no information means every cell is equally
    likely), which is also how the fixed-length baseline of [14] treats the
    domain.
    """
    validate_probability_vector(values, allow_zero_sum=True)
    total = float(sum(values))
    if total <= 0:
        return [1.0 / len(values)] * len(values)
    return [v / total for v in values]


def entropy_bits(values: Sequence[float]) -> float:
    """Shannon entropy (bits) of the normalised distribution.

    This is the lower bound on the expected Huffman codeword length; the gap
    between the achieved average length and the entropy is at most one bit.
    """
    probabilities = normalize(values)
    return -sum(p * math.log2(p) for p in probabilities if p > 0)


def probability_skew(values: Sequence[float]) -> float:
    """A simple skew measure: max probability divided by mean probability.

    Equals 1.0 for the uniform distribution and grows as the mass concentrates
    on few cells.  Used by experiments to report how "peaked" a sigmoid
    configuration is (higher inflection point ``a`` -> higher skew -> larger
    Huffman gains, cf. Section 7.2).
    """
    probabilities = normalize(values)
    mean = 1.0 / len(probabilities)
    return max(probabilities) / mean


def top_k_mass(values: Sequence[float], k: int) -> float:
    """Fraction of total probability mass carried by the ``k`` most likely cells."""
    if k < 1:
        raise ValueError("k must be at least 1")
    probabilities = sorted(normalize(values), reverse=True)
    return sum(probabilities[: min(k, len(probabilities))])
