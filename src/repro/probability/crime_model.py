"""Per-cell alert-likelihood model trained on crime incidents.

The real-data experiment of Section 7.1 overlays a 32x32 grid on the Chicago
crime dataset, trains a **logistic regression** model on incidents from
January through November 2015 and tests on December, then uses the model's
per-cell likelihood scores as the input probabilities of the encoding schemes
(reported accuracy: 92.9%).

Since the original CLEAR data is not redistributable here, the training data
comes from :mod:`repro.datasets.chicago`, a synthetic generator with the same
statistical shape (hot-spot mixture, four crime categories, monthly
seasonality); see DESIGN.md substitution 2.  The model itself is a standard
binary logistic regression implemented on numpy (batch gradient descent with
L2 regularisation), with per-cell features derived from historical incident
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["LogisticRegressionModel", "CellLikelihoodModel", "CellFeatureExtractor"]


class LogisticRegressionModel:
    """Binary logistic regression trained with batch gradient descent.

    A small, dependency-light implementation sufficient for the paper's use:
    the model maps a per-cell feature vector to the probability that the cell
    hosts at least one incident of interest in the test period.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    n_iterations:
        Number of full-batch iterations.
    l2_penalty:
        L2 regularisation strength (0 disables regularisation).
    """

    def __init__(self, learning_rate: float = 0.1, n_iterations: int = 2000, l2_penalty: float = 1e-3):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_iterations < 1:
            raise ValueError("n_iterations must be at least 1")
        if l2_penalty < 0:
            raise ValueError("l2_penalty must be non-negative")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2_penalty = l2_penalty
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._fitted = False

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionModel":
        """Fit the model on a feature matrix and binary label vector."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix (samples x features)")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("labels must have one entry per sample")
        if set(np.unique(labels)) - {0.0, 1.0}:
            raise ValueError("labels must be binary (0/1)")

        n_samples, n_features = features.shape
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        for _ in range(self.n_iterations):
            linear = features @ self.weights + self.bias
            predictions = self._sigmoid(linear)
            error = predictions - labels
            grad_w = (features.T @ error) / n_samples + self.l2_penalty * self.weights
            grad_b = float(np.mean(error))
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Predicted probability of the positive class for each row."""
        if not self._fitted or self.weights is None:
            raise RuntimeError("model must be fitted before calling predict_proba")
        features = np.asarray(features, dtype=float)
        return self._sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def accuracy(self, features: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
        """Fraction of correct hard predictions on a labelled set."""
        labels = np.asarray(labels, dtype=int)
        return float(np.mean(self.predict(features, threshold) == labels))


class CellFeatureExtractor:
    """Builds per-cell feature vectors from monthly incident-count histories.

    Features per cell (all computed on the training months only):

    * total incident count,
    * mean monthly count,
    * count in the most recent training month (recency),
    * maximum monthly count (burstiness),
    * number of active months (months with at least one incident),
    * mean count over the cell's grid neighbours (spatial smoothing).
    """

    N_FEATURES = 6

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols

    def _neighbors(self, cell_id: int) -> list[int]:
        row, col = divmod(cell_id, self.cols)
        result = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.rows and 0 <= c < self.cols:
                    result.append(r * self.cols + c)
        return result

    def extract(self, monthly_counts: np.ndarray) -> np.ndarray:
        """Feature matrix (n_cells x N_FEATURES) from a (n_cells x n_months) count matrix."""
        monthly_counts = np.asarray(monthly_counts, dtype=float)
        if monthly_counts.ndim != 2:
            raise ValueError("monthly_counts must be 2-D (cells x months)")
        n_cells = monthly_counts.shape[0]
        if n_cells != self.rows * self.cols:
            raise ValueError(
                f"expected {self.rows * self.cols} cells, got {n_cells}"
            )
        total = monthly_counts.sum(axis=1)
        mean = monthly_counts.mean(axis=1)
        recent = monthly_counts[:, -1]
        peak = monthly_counts.max(axis=1)
        active_months = (monthly_counts > 0).sum(axis=1).astype(float)
        neighbor_mean = np.zeros(n_cells)
        for cell_id in range(n_cells):
            neighbors = self._neighbors(cell_id)
            neighbor_mean[cell_id] = mean[neighbors].mean() if neighbors else 0.0
        features = np.column_stack([total, mean, recent, peak, active_months, neighbor_mean])
        # Standardise feature columns so gradient descent behaves well.
        std = features.std(axis=0)
        std[std == 0] = 1.0
        return (features - features.mean(axis=0)) / std


@dataclass
class CellLikelihoodModel:
    """End-to-end "train on Jan-Nov, test on Dec" pipeline of Section 7.1.

    Given a per-cell monthly incident-count matrix covering a full year, the
    model:

    1. extracts per-cell features from the first ``train_months`` months,
    2. labels each cell by whether it hosts at least one incident in the test
       month(s),
    3. fits a logistic regression, reports its test accuracy, and
    4. exposes the per-cell likelihood scores consumed by the encoders.
    """

    rows: int
    cols: int
    train_months: int = 11
    model: LogisticRegressionModel = field(default_factory=LogisticRegressionModel)
    accuracy_: Optional[float] = None
    likelihoods_: Optional[list[float]] = None

    def fit(self, monthly_counts: np.ndarray) -> "CellLikelihoodModel":
        """Fit on a (n_cells x n_months) incident-count matrix."""
        monthly_counts = np.asarray(monthly_counts, dtype=float)
        if monthly_counts.shape[1] <= self.train_months:
            raise ValueError(
                f"need more than {self.train_months} months of data to hold out a test period"
            )
        extractor = CellFeatureExtractor(self.rows, self.cols)
        train_counts = monthly_counts[:, : self.train_months]
        test_counts = monthly_counts[:, self.train_months :]

        features = extractor.extract(train_counts)
        labels = (test_counts.sum(axis=1) > 0).astype(int)
        self.model.fit(features, labels)
        self.accuracy_ = self.model.accuracy(features, labels)
        self.likelihoods_ = [float(p) for p in self.model.predict_proba(features)]
        return self

    def cell_probabilities(self) -> list[float]:
        """Per-cell alert likelihoods (the encoder input)."""
        if self.likelihoods_ is None:
            raise RuntimeError("model must be fitted before requesting probabilities")
        return list(self.likelihoods_)
