"""Synthetic sigmoid likelihood model (Section 7, synthetic data).

The paper generates the likelihood of each grid cell being part of an alert
zone by feeding a uniform random draw ``x ~ U(0, 1)`` per cell through the
sigmoid activation ``S(x) = 1 / (1 + exp(-b * (x - a)))``:

* parameter ``a`` is the inflection point -- higher values (e.g. 0.99) push
  most cells to near-zero likelihood and concentrate the mass on few cells,
  i.e. a more skewed distribution;
* parameter ``b`` is the gradient -- higher values sharpen the transition.

The evaluation sweeps ``a in {0.90, 0.99}`` and ``b in {10, 100, 200}``
(Fig. 10), and uses ``a = 0.95, b = 20`` for the granularity and bound
experiments (Figs. 7, 12, 13).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["sigmoid", "SigmoidProbabilityModel"]


def sigmoid(x: float, a: float, b: float) -> float:
    """The sigmoid activation ``1 / (1 + exp(-b * (x - a)))``."""
    # Guard against overflow for very large |b * (x - a)|.
    exponent = -b * (x - a)
    if exponent >= 700:
        return 0.0
    if exponent <= -700:
        return 1.0
    return 1.0 / (1.0 + math.exp(exponent))


@dataclass
class SigmoidProbabilityModel:
    """Generates per-cell alert likelihoods with the paper's sigmoid model.

    Parameters
    ----------
    a:
        Inflection point of the sigmoid (paper values: 0.90, 0.95, 0.99).
    b:
        Gradient of the sigmoid (paper values: 10, 20, 100, 200).
    seed:
        Seed for the per-cell uniform draws; fixing it makes experiments
        reproducible.

    Example
    -------
    >>> model = SigmoidProbabilityModel(a=0.95, b=20, seed=42)
    >>> probs = model.cell_probabilities(1024)
    >>> len(probs)
    1024
    >>> all(0.0 <= p <= 1.0 for p in probs)
    True
    """

    a: float = 0.95
    b: float = 20.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.a < 1.0:
            raise ValueError(f"inflection point a must be in (0, 1), got {self.a}")
        if self.b <= 0:
            raise ValueError(f"gradient b must be positive, got {self.b}")

    def cell_probabilities(self, n_cells: int, rng: Optional[random.Random] = None) -> list[float]:
        """Draw one likelihood per cell.

        Each cell gets an independent ``x ~ U(0, 1)`` mapped through the
        sigmoid; the output is a raw likelihood in ``(0, 1)``, *not* a
        normalised distribution (callers that need normalisation use
        :func:`repro.probability.distributions.normalize`).
        """
        if n_cells < 1:
            raise ValueError("n_cells must be at least 1")
        rng = rng or random.Random(self.seed)
        return [sigmoid(rng.random(), self.a, self.b) for _ in range(n_cells)]

    def describe(self) -> str:
        """Human-readable parameter summary used in experiment reports."""
        return f"sigmoid(a={self.a:g}, b={self.b:g})"
