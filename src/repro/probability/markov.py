"""Correlated-cell probability models (Section 9 future work, Section 3.2 note).

The paper's conclusions sketch a richer stochastic model in which alert
probabilities of cells are *correlated* -- e.g. a Markov model over the grid
whose stationary distribution supplies the per-cell likelihoods -- and note
(Section 3.2) that for grids with highly correlated cell probabilities such a
model "leads to a more accurate probabilistic model".  This module implements
that direction:

* :class:`GridMarkovModel` -- a discrete-time Markov chain whose states are
  the grid cells; transitions move to neighbouring cells (a lazy random walk
  biased by per-cell attractiveness).  Its stationary distribution is computed
  by power iteration and used as the alert-likelihood vector.
* :func:`spatially_correlated_probabilities` -- a cheaper alternative: a
  Gaussian-smoothed random field, which produces the smooth "hot spot"
  structure real datasets (like the Chicago crime likelihoods) exhibit.

Both produce drop-in likelihood vectors for the encoding schemes; the
correlation benchmarks quantify how much extra benefit the Huffman scheme
draws from smooth fields (zones around popular epicenters then consist almost
entirely of popular cells).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.grid.grid import Grid

__all__ = ["GridMarkovModel", "spatially_correlated_probabilities"]


@dataclass
class GridMarkovModel:
    """A lazy random walk over the grid cells with attractiveness-biased moves.

    Parameters
    ----------
    grid:
        The spatial grid; transitions connect Moore-neighbouring cells.
    attractiveness:
        Non-negative per-cell weights steering the walk (e.g. points of
        interest, venue popularity).  Uniform if omitted.
    laziness:
        Probability of staying in the current cell at each step; must be in
        ``[0, 1)``.  A positive value guarantees aperiodicity.
    """

    grid: Grid
    attractiveness: Optional[Sequence[float]] = None
    laziness: float = 0.2

    def __post_init__(self) -> None:
        n = self.grid.n_cells
        if self.attractiveness is None:
            self.attractiveness = [1.0] * n
        if len(self.attractiveness) != n:
            raise ValueError(f"attractiveness must have {n} entries, got {len(self.attractiveness)}")
        if any(a < 0 for a in self.attractiveness):
            raise ValueError("attractiveness weights must be non-negative")
        if not 0.0 <= self.laziness < 1.0:
            raise ValueError("laziness must be in [0, 1)")

    # ------------------------------------------------------------------
    # Transition structure
    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """The row-stochastic transition matrix ``P`` of the walk."""
        n = self.grid.n_cells
        matrix = np.zeros((n, n))
        for cell in range(n):
            neighbors = self.grid.neighbors(cell)
            weights = np.array([self.attractiveness[j] for j in neighbors], dtype=float)
            matrix[cell, cell] += self.laziness
            move_mass = 1.0 - self.laziness
            if weights.sum() <= 0 or not neighbors:
                # Nowhere attractive to go: stay put.
                matrix[cell, cell] += move_mass
            else:
                weights = weights / weights.sum()
                for j, w in zip(neighbors, weights):
                    matrix[cell, j] += move_mass * w
        return matrix

    def stationary_distribution(self, tolerance: float = 1e-10, max_iterations: int = 10_000) -> list[float]:
        """The stationary distribution of the walk (power iteration).

        The chain is finite, irreducible (the grid is connected through Moore
        neighbourhoods with positive attractiveness somewhere) and aperiodic
        (lazy), so the limit exists and is unique whenever every cell is
        reachable; cells with zero attractiveness may receive zero mass.
        """
        matrix = self.transition_matrix()
        n = matrix.shape[0]
        distribution = np.full(n, 1.0 / n)
        for _ in range(max_iterations):
            updated = distribution @ matrix
            if np.abs(updated - distribution).max() < tolerance:
                distribution = updated
                break
            distribution = updated
        total = distribution.sum()
        if total <= 0:
            raise RuntimeError("power iteration collapsed to a zero vector (internal error)")
        return [float(v) for v in distribution / total]

    def cell_probabilities(self, scale: float = 1.0) -> list[float]:
        """Alert likelihoods proportional to the stationary distribution.

        ``scale`` rescales the maximum likelihood (the hottest cell gets
        ``scale``); the encoders only use relative ordering, but the triggered
        workload generator interprets the values as Bernoulli probabilities,
        so keeping them in ``[0, 1]`` matters there.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        stationary = self.stationary_distribution()
        peak = max(stationary)
        if peak == 0:
            return stationary
        return [min(1.0, scale * value / peak) for value in stationary]


def spatially_correlated_probabilities(
    grid: Grid,
    correlation_cells: float = 2.0,
    skew: float = 3.0,
    seed: Optional[int] = None,
) -> list[float]:
    """A smooth random likelihood field over the grid.

    A white-noise field is drawn per cell, smoothed with a Gaussian kernel of
    standard deviation ``correlation_cells`` (in cell units), normalised to
    ``[0, 1]`` and sharpened by raising to the power ``skew`` -- larger skew
    concentrates the mass on fewer hot spots.

    Compared to the paper's i.i.d. sigmoid model, neighbouring cells here have
    similar likelihoods, which is what real popularity / incident data looks
    like (cf. the Chicago model) and what the correlated-model future work
    targets.
    """
    if correlation_cells <= 0:
        raise ValueError("correlation_cells must be positive")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = np.random.default_rng(seed)
    noise = rng.random((grid.rows, grid.cols))

    # Separable Gaussian blur (reflective boundaries keep the field unbiased
    # at the grid edges).
    from scipy.ndimage import gaussian_filter

    smoothed = gaussian_filter(noise, sigma=correlation_cells, mode="reflect")

    low, high = smoothed.min(), smoothed.max()
    if high - low < 1e-12:
        flat = np.full(grid.n_cells, 0.5)
    else:
        flat = ((smoothed - low) / (high - low)).reshape(-1)
    return [float(v) ** skew for v in flat]
