"""Poisson model for the number of alerted cells (Theorem 1).

The paper argues that when the grid has many cells, each with a small and
(nearly) independent probability of being alerted, the number ``Y`` of alerted
cells in a zone approximately follows a Poisson distribution with rate
``lambda = sum_i p(v_i) = 1``; in particular large zones are rare, which is
what motivates optimising for compact zones.  This module provides the pmf,
sampling, and the full alert-count distribution used by tests and ablations.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

__all__ = ["poisson_pmf", "poisson_cdf", "poisson_sample", "alert_count_distribution", "expected_alert_count"]


def poisson_pmf(k: int, rate: float = 1.0) -> float:
    """Probability of exactly ``k`` alerted cells under ``Pois(rate)``.

    For the paper's default ``rate = 1`` this is ``e^-1 / k!`` (Equation 4).
    """
    if k < 0:
        return 0.0
    if rate < 0:
        raise ValueError("rate must be non-negative")
    return math.exp(-rate) * rate**k / math.factorial(k)


def poisson_cdf(k: int, rate: float = 1.0) -> float:
    """Probability of at most ``k`` alerted cells under ``Pois(rate)``."""
    if k < 0:
        return 0.0
    return min(1.0, sum(poisson_pmf(i, rate) for i in range(k + 1)))


def poisson_sample(rate: float = 1.0, rng: Optional[random.Random] = None) -> int:
    """Draw one sample from ``Pois(rate)`` (Knuth's multiplication method)."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if rate == 0:
        return 0
    rng = rng or random.Random()
    threshold = math.exp(-rate)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def expected_alert_count(probabilities: Sequence[float]) -> float:
    """Expected number of alerted cells ``lambda = sum_i p(v_i)``.

    Theorem 1 normalises the per-cell probabilities so this sum equals one;
    experiments can use this helper to check or enforce that normalisation.
    """
    return float(sum(probabilities))


def alert_count_distribution(probabilities: Sequence[float], max_k: int = 20) -> list[float]:
    """Poisson approximation of the alert-count distribution for a probability vector.

    Returns ``[P(Y=0), P(Y=1), ..., P(Y=max_k)]`` with rate
    ``sum_i p(v_i)``, the approximation established in Theorem 1.
    """
    if max_k < 0:
        raise ValueError("max_k must be non-negative")
    rate = expected_alert_count(probabilities)
    return [poisson_pmf(k, rate) for k in range(max_k + 1)]
