"""Probabilistic models feeding the encoding schemes.

The coding schemes of the paper are driven by a per-cell likelihood of
becoming part of an alert zone (step I of Section 3.2).  This package
provides every likelihood source used in the evaluation:

* :mod:`repro.probability.sigmoid` -- the synthetic sigmoid-activation model
  of Section 7 with inflection parameter ``a`` and gradient ``b``.
* :mod:`repro.probability.poisson` -- the Poisson alert-count model of
  Theorem 1 plus sampling helpers.
* :mod:`repro.probability.crime_model` -- a logistic-regression likelihood
  model trained on (synthetic) crime incidents, mirroring the Chicago
  experiment of Section 7.1.
* :mod:`repro.probability.distributions` -- normalisation, skew metrics and
  entropy helpers shared by the analysis modules.
"""

from repro.probability.distributions import (
    entropy_bits,
    normalize,
    probability_skew,
    validate_probability_vector,
)
from repro.probability.poisson import poisson_pmf, poisson_sample, alert_count_distribution
from repro.probability.sigmoid import SigmoidProbabilityModel, sigmoid
from repro.probability.crime_model import LogisticRegressionModel, CellLikelihoodModel
from repro.probability.markov import GridMarkovModel, spatially_correlated_probabilities

__all__ = [
    "GridMarkovModel",
    "spatially_correlated_probabilities",

    "entropy_bits",
    "normalize",
    "probability_skew",
    "validate_probability_vector",
    "poisson_pmf",
    "poisson_sample",
    "alert_count_distribution",
    "SigmoidProbabilityModel",
    "sigmoid",
    "LogisticRegressionModel",
    "CellLikelihoodModel",
]
