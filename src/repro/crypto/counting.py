"""Pairing-operation accounting.

The paper's evaluation metric (Section 7) is *the number of HVE bilinear map
pairing operations* incurred by each encoding technique; these dominate the
cost of the matching step at the service provider.  This module provides:

* :class:`PairingCounter` -- a counter recorded by every pairing evaluation of
  a :class:`~repro.crypto.group.BilinearGroup`, with checkpoint support so an
  experiment can attribute pairings to phases (setup, encryption, matching).
* Analytic helpers that compute, for a set of tokens, how many pairings a
  single ciphertext match would cost without running the crypto: ``1 + 2 * k``
  pairings for a token with ``k`` non-star symbols (one pairing for ``C_0`` /
  ``K_0`` plus two per non-star position), exactly matching the ``Query``
  equation of Section 2.1.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "PairingCounter",
    "non_star_count",
    "pairing_cost_of_token",
    "pairing_cost_of_tokens",
    "matching_cost",
]


@dataclass
class PairingCounter:
    """Counts bilinear pairing evaluations, with named checkpoints.

    Example
    -------
    >>> counter = PairingCounter()
    >>> counter.record_pairing()
    >>> counter.checkpoint("setup")
    >>> counter.record_pairing(); counter.record_pairing()
    >>> counter.since("setup")
    2
    >>> counter.total
    3
    """

    total: int = 0
    _checkpoints: dict[str, int] = field(default_factory=dict)
    # Matching may fan ciphertext chunks out to worker threads that all share
    # one group (and therefore one counter); the lock keeps ``total`` exact.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_pairing(self, count: int = 1) -> None:
        """Record ``count`` pairing evaluations (thread-safe)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            self.total += count

    def reset(self) -> None:
        """Reset the counter and drop all checkpoints."""
        with self._lock:
            self.total = 0
            self._checkpoints.clear()

    def checkpoint(self, name: str) -> None:
        """Remember the current total under ``name``."""
        self._checkpoints[name] = self.total

    def since(self, name: str) -> int:
        """Number of pairings recorded since checkpoint ``name``."""
        if name not in self._checkpoints:
            raise KeyError(f"unknown checkpoint: {name!r}")
        return self.total - self._checkpoints[name]

    def checkpoints(self) -> Mapping[str, int]:
        """Read-only view of the recorded checkpoints."""
        return dict(self._checkpoints)


def non_star_count(pattern: Sequence[str] | str) -> int:
    """Number of non-star symbols in a token pattern.

    The pattern may be a string such as ``"0*1"`` or any sequence of
    single-character symbols where ``"*"`` denotes the wildcard.
    """
    return sum(1 for symbol in pattern if symbol != "*")


def pairing_cost_of_token(pattern: Sequence[str] | str) -> int:
    """Pairings needed to evaluate one token against one ciphertext.

    From the ``Query`` equation (Section 2.1): one pairing for
    ``e(C_0, K_0)`` plus two pairings (``e(C_i1, K_i1)`` and
    ``e(C_i2, K_i2)``) for every index ``i`` where the pattern is not a star.
    """
    return 1 + 2 * non_star_count(pattern)


def pairing_cost_of_tokens(patterns: Iterable[Sequence[str] | str]) -> int:
    """Total pairings to evaluate each token in ``patterns`` against one ciphertext."""
    return sum(pairing_cost_of_token(p) for p in patterns)


def matching_cost(patterns: Iterable[Sequence[str] | str], num_ciphertexts: int) -> int:
    """Total pairings to match every token against ``num_ciphertexts`` ciphertexts.

    This is the quantity the service provider pays each time an alert zone is
    declared: every stored ciphertext is tested against every token of the
    zone.
    """
    if num_ciphertexts < 0:
        raise ValueError("num_ciphertexts must be non-negative")
    return pairing_cost_of_tokens(patterns) * num_ciphertexts
