"""Wire-format serialization for HVE keys, ciphertexts and tokens.

In the deployed system (Fig. 1 / Fig. 3 of the paper) three kinds of payloads
travel between parties:

* the **public key** published by the trusted authority to all mobile users;
* **ciphertexts** uploaded by users to the service provider;
* **search tokens** sent by the trusted authority to the service provider when
  an alert zone is declared.

This module provides a deterministic, dependency-free wire format for each of
them (nested dictionaries of hex-encoded big integers that round-trip through
JSON), plus helpers to measure payload sizes -- useful for the communication
overhead analysis accompanying Section 5.

It also provides *compact wire forms*: plain tuples of Python ``int`` that
pickle cheaply and rebuild quickly.  These are what the process-parallel
matching engine ships across worker boundaries -- the JSON dictionaries are
for inter-party transport and persistence, the tuples for intra-provider
fan-out.  ``group_to_wire`` / ``wire_to_group`` carry the group constants
themselves (including the prime factorisation): in the ideal-group model the
provider-side process already holds the factored group object, so shipping it
to the provider's own worker processes leaks nothing new.

The representation encodes group elements by their discrete logarithm, which
is an artefact of the ideal-group-model backend (see ``DESIGN.md``,
substitution 1).  With a real pairing backend, the same structure would carry
curve-point encodings instead; the *shape and count* of the transported
components is identical.
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto.group import BilinearGroup, GroupElement, GTElement
from repro.crypto.hve import HVECiphertext, HVEPublicKey, HVESecretKey, HVEToken

__all__ = [
    "serialize_public_key",
    "deserialize_public_key",
    "serialize_secret_key",
    "deserialize_secret_key",
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_token",
    "deserialize_token",
    "to_json",
    "from_json",
    "payload_size_bytes",
    "wire_size_bytes",
    "group_to_wire",
    "wire_to_group",
    "element_to_wire",
    "wire_to_element",
    "gt_element_to_wire",
    "wire_to_gt_element",
    "ciphertext_to_wire",
    "wire_to_ciphertext",
    "token_to_wire",
    "wire_to_token",
]


def _encode_int(value: int) -> str:
    return hex(value)


def _decode_int(value: str) -> int:
    return int(value, 16)


def _encode_g(element: GroupElement) -> str:
    return _encode_int(element._discrete_log())


def _encode_gt(element: GTElement) -> str:
    return _encode_int(element._discrete_log())


def _decode_g(group: BilinearGroup, value: str) -> GroupElement:
    return group.element_from_exponent(_decode_int(value))


def _decode_gt(group: BilinearGroup, value: str) -> GTElement:
    return group.gt_element_from_exponent(_decode_int(value))


# ----------------------------------------------------------------------
# Public key
# ----------------------------------------------------------------------
def serialize_public_key(public_key: HVEPublicKey) -> dict[str, Any]:
    """Serialize an HVE public key into a JSON-compatible dictionary."""
    return {
        "kind": "hve_public_key",
        "width": public_key.width,
        "g_q": _encode_g(public_key.g_q),
        "v_blinded": _encode_g(public_key.v_blinded),
        "a_pair": _encode_gt(public_key.a_pair),
        "u_blinded": [_encode_g(e) for e in public_key.u_blinded],
        "h_blinded": [_encode_g(e) for e in public_key.h_blinded],
        "w_blinded": [_encode_g(e) for e in public_key.w_blinded],
    }


def deserialize_public_key(group: BilinearGroup, payload: dict[str, Any]) -> HVEPublicKey:
    """Rebuild an HVE public key from :func:`serialize_public_key` output."""
    if payload.get("kind") != "hve_public_key":
        raise ValueError("payload is not a serialized HVE public key")
    return HVEPublicKey(
        group=group,
        width=int(payload["width"]),
        g_q=_decode_g(group, payload["g_q"]),
        v_blinded=_decode_g(group, payload["v_blinded"]),
        a_pair=_decode_gt(group, payload["a_pair"]),
        u_blinded=tuple(_decode_g(group, e) for e in payload["u_blinded"]),
        h_blinded=tuple(_decode_g(group, e) for e in payload["h_blinded"]),
        w_blinded=tuple(_decode_g(group, e) for e in payload["w_blinded"]),
    )


# ----------------------------------------------------------------------
# Secret key
# ----------------------------------------------------------------------
def serialize_secret_key(secret_key: HVESecretKey) -> dict[str, Any]:
    """Serialize an HVE secret key (trusted-authority storage / backup)."""
    return {
        "kind": "hve_secret_key",
        "width": secret_key.width,
        "g_q": _encode_g(secret_key.g_q),
        "a": _encode_int(secret_key.a),
        "g": _encode_g(secret_key.g),
        "v": _encode_g(secret_key.v),
        "u": [_encode_g(e) for e in secret_key.u],
        "h": [_encode_g(e) for e in secret_key.h],
        "w": [_encode_g(e) for e in secret_key.w],
    }


def deserialize_secret_key(group: BilinearGroup, payload: dict[str, Any]) -> HVESecretKey:
    """Rebuild an HVE secret key from :func:`serialize_secret_key` output."""
    if payload.get("kind") != "hve_secret_key":
        raise ValueError("payload is not a serialized HVE secret key")
    return HVESecretKey(
        group=group,
        width=int(payload["width"]),
        g_q=_decode_g(group, payload["g_q"]),
        a=_decode_int(payload["a"]),
        g=_decode_g(group, payload["g"]),
        v=_decode_g(group, payload["v"]),
        u=tuple(_decode_g(group, e) for e in payload["u"]),
        h=tuple(_decode_g(group, e) for e in payload["h"]),
        w=tuple(_decode_g(group, e) for e in payload["w"]),
    )


# ----------------------------------------------------------------------
# Ciphertext
# ----------------------------------------------------------------------
def serialize_ciphertext(ciphertext: HVECiphertext) -> dict[str, Any]:
    """Serialize a ciphertext as uploaded by a mobile user."""
    return {
        "kind": "hve_ciphertext",
        "width": ciphertext.width,
        "c_prime": _encode_gt(ciphertext.c_prime),
        "c0": _encode_g(ciphertext.c0),
        "c1": [_encode_g(e) for e in ciphertext.c1],
        "c2": [_encode_g(e) for e in ciphertext.c2],
    }


def deserialize_ciphertext(group: BilinearGroup, payload: dict[str, Any]) -> HVECiphertext:
    """Rebuild a ciphertext from :func:`serialize_ciphertext` output."""
    if payload.get("kind") != "hve_ciphertext":
        raise ValueError("payload is not a serialized HVE ciphertext")
    return HVECiphertext(
        width=int(payload["width"]),
        c_prime=_decode_gt(group, payload["c_prime"]),
        c0=_decode_g(group, payload["c0"]),
        c1=tuple(_decode_g(group, e) for e in payload["c1"]),
        c2=tuple(_decode_g(group, e) for e in payload["c2"]),
    )


# ----------------------------------------------------------------------
# Token
# ----------------------------------------------------------------------
def serialize_token(token: HVEToken) -> dict[str, Any]:
    """Serialize a search token as sent by the trusted authority to the SP."""
    return {
        "kind": "hve_token",
        "pattern": token.pattern,
        "k0": _encode_g(token.k0),
        "k1": {str(i): _encode_g(e) for i, e in token.k1.items()},
        "k2": {str(i): _encode_g(e) for i, e in token.k2.items()},
    }


def deserialize_token(group: BilinearGroup, payload: dict[str, Any]) -> HVEToken:
    """Rebuild a search token from :func:`serialize_token` output."""
    if payload.get("kind") != "hve_token":
        raise ValueError("payload is not a serialized HVE token")
    return HVEToken(
        pattern=payload["pattern"],
        k0=_decode_g(group, payload["k0"]),
        k1={int(i): _decode_g(group, e) for i, e in payload["k1"].items()},
        k2={int(i): _decode_g(group, e) for i, e in payload["k2"].items()},
    )


# ----------------------------------------------------------------------
# Compact picklable wire forms (process-boundary transport)
# ----------------------------------------------------------------------
# The JSON payloads above model inter-party messages; the tuple forms below
# exist so the provider can fan matching work out to worker *processes*.
# Everything is normalised to plain ``int``/``str``/``tuple``, so the forms
# pickle identically whatever arithmetic backend produced them.

def group_to_wire(group: BilinearGroup) -> tuple[int, int, int, str, Any]:
    """Compact picklable form of a group: ``(p, q, work_factor, backend, precomp)``.

    Carries the prime factorisation, so this must only ever travel between a
    process and its own workers (the in-process group object exposes the same
    factors).  The receiving side rebuilds a numerically identical group with
    :func:`wire_to_group`; backends resolve by registry name, so the worker
    runs the same arithmetic the parent selected.

    The fifth slot ships the group's fixed-base precomputation table (or
    ``None``): serialization warms the table so every worker inherits it
    instead of paying the build cost per process.  The first four slots alone
    identify the group -- consumers that key caches on group identity compare
    ``wire[:4]`` so a table arriving later does not read as a different group.
    """
    precomp = None
    if group.pairing_work_factor:
        group.warm_precomputation()
        precomp = group.precomputation_to_wire()
    return (
        int(group.p),
        int(group.q),
        group.pairing_work_factor,
        group.backend_name,
        precomp,
    )


def wire_to_group(wire: tuple) -> BilinearGroup:
    """Rebuild a :class:`BilinearGroup` from :func:`group_to_wire` output.

    Accepts both the current 5-tuple and the legacy 4-tuple (no precomp slot).
    """
    p, q, work_factor, backend = wire[:4]
    group = BilinearGroup.from_primes(p, q, pairing_work_factor=work_factor, backend=backend)
    if len(wire) > 4 and wire[4] is not None:
        group.install_precomputation(wire[4])
    return group


def element_to_wire(element: GroupElement) -> int:
    """Compact form of a ``G`` element (its discrete log as a plain int)."""
    return int(element._discrete_log())


def wire_to_element(group: BilinearGroup, wire: int) -> GroupElement:
    """Rebuild a ``G`` element bound to ``group``."""
    return group.element_from_exponent(wire)


def gt_element_to_wire(element: GTElement) -> int:
    """Compact form of a ``GT`` element (its discrete log as a plain int)."""
    return int(element._discrete_log())


def wire_to_gt_element(group: BilinearGroup, wire: int) -> GTElement:
    """Rebuild a ``GT`` element bound to ``group``."""
    return group.gt_element_from_exponent(wire)


def ciphertext_to_wire(
    ciphertext: HVECiphertext,
) -> tuple[int, int, tuple[int, ...], tuple[int, ...]]:
    """Compact picklable form of a ciphertext: ``(c', c0, c1, c2)``.

    The width is implied by ``len(c1)``, so it is not repeated on the wire.
    """
    return (
        gt_element_to_wire(ciphertext.c_prime),
        element_to_wire(ciphertext.c0),
        tuple(element_to_wire(e) for e in ciphertext.c1),
        tuple(element_to_wire(e) for e in ciphertext.c2),
    )


def wire_to_ciphertext(
    group: BilinearGroup, wire: tuple[int, int, tuple[int, ...], tuple[int, ...]]
) -> HVECiphertext:
    """Rebuild a ciphertext from :func:`ciphertext_to_wire` output."""
    c_prime, c0, c1, c2 = wire
    return HVECiphertext(
        width=len(c1),
        c_prime=wire_to_gt_element(group, c_prime),
        c0=wire_to_element(group, c0),
        c1=tuple(wire_to_element(group, e) for e in c1),
        c2=tuple(wire_to_element(group, e) for e in c2),
    )


def token_to_wire(
    token: HVEToken,
) -> tuple[str, int, tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
    """Compact picklable form of a token: ``(pattern, k0, k1 items, k2 items)``."""
    return (
        token.pattern,
        element_to_wire(token.k0),
        tuple((i, element_to_wire(e)) for i, e in sorted(token.k1.items())),
        tuple((i, element_to_wire(e)) for i, e in sorted(token.k2.items())),
    )


def wire_to_token(
    group: BilinearGroup,
    wire: tuple[str, int, tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]],
) -> HVEToken:
    """Rebuild a token from :func:`token_to_wire` output."""
    pattern, k0, k1, k2 = wire
    return HVEToken(
        pattern=pattern,
        k0=wire_to_element(group, k0),
        k1={i: wire_to_element(group, e) for i, e in k1},
        k2={i: wire_to_element(group, e) for i, e in k2},
    )


# ----------------------------------------------------------------------
# Generic helpers
# ----------------------------------------------------------------------
def wire_size_bytes(wire: Any) -> int:
    """Approximate transport size of a compact wire form (nested ints/strs).

    Counts the minimal byte length of every integer plus the UTF-8 length of
    every string; structural overhead is ignored.  Used by the shard-shipping
    metrics (``bytes_shipped``) -- a stable, backend-independent estimate, not
    an exact pickle size.
    """
    if isinstance(wire, bool):
        return 1
    if isinstance(wire, int):
        return max(1, (wire.bit_length() + 7) // 8)
    if isinstance(wire, str):
        return len(wire.encode("utf-8"))
    if isinstance(wire, (tuple, list)):
        return sum(wire_size_bytes(item) for item in wire)
    return 0


def to_json(payload: dict[str, Any]) -> str:
    """Render a serialized payload as canonical (sorted-key) JSON."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def from_json(text: str) -> dict[str, Any]:
    """Parse a payload previously rendered with :func:`to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("expected a JSON object payload")
    return payload


def payload_size_bytes(payload: dict[str, Any]) -> int:
    """Size in bytes of the canonical JSON encoding of ``payload``."""
    return len(to_json(payload).encode("utf-8"))
