"""Wire-format serialization for HVE keys, ciphertexts and tokens.

In the deployed system (Fig. 1 / Fig. 3 of the paper) three kinds of payloads
travel between parties:

* the **public key** published by the trusted authority to all mobile users;
* **ciphertexts** uploaded by users to the service provider;
* **search tokens** sent by the trusted authority to the service provider when
  an alert zone is declared.

This module provides a deterministic, dependency-free wire format for each of
them (nested dictionaries of hex-encoded big integers that round-trip through
JSON), plus helpers to measure payload sizes -- useful for the communication
overhead analysis accompanying Section 5.

The representation encodes group elements by their discrete logarithm, which
is an artefact of the ideal-group-model backend (see ``DESIGN.md``,
substitution 1).  With a real pairing backend, the same structure would carry
curve-point encodings instead; the *shape and count* of the transported
components is identical.
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto.group import BilinearGroup, GroupElement, GTElement
from repro.crypto.hve import HVECiphertext, HVEPublicKey, HVESecretKey, HVEToken

__all__ = [
    "serialize_public_key",
    "deserialize_public_key",
    "serialize_secret_key",
    "deserialize_secret_key",
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_token",
    "deserialize_token",
    "to_json",
    "from_json",
    "payload_size_bytes",
]


def _encode_int(value: int) -> str:
    return hex(value)


def _decode_int(value: str) -> int:
    return int(value, 16)


def _encode_g(element: GroupElement) -> str:
    return _encode_int(element._discrete_log())


def _encode_gt(element: GTElement) -> str:
    return _encode_int(element._discrete_log())


def _decode_g(group: BilinearGroup, value: str) -> GroupElement:
    return group.element_from_exponent(_decode_int(value))


def _decode_gt(group: BilinearGroup, value: str) -> GTElement:
    return group.gt_element_from_exponent(_decode_int(value))


# ----------------------------------------------------------------------
# Public key
# ----------------------------------------------------------------------
def serialize_public_key(public_key: HVEPublicKey) -> dict[str, Any]:
    """Serialize an HVE public key into a JSON-compatible dictionary."""
    return {
        "kind": "hve_public_key",
        "width": public_key.width,
        "g_q": _encode_g(public_key.g_q),
        "v_blinded": _encode_g(public_key.v_blinded),
        "a_pair": _encode_gt(public_key.a_pair),
        "u_blinded": [_encode_g(e) for e in public_key.u_blinded],
        "h_blinded": [_encode_g(e) for e in public_key.h_blinded],
        "w_blinded": [_encode_g(e) for e in public_key.w_blinded],
    }


def deserialize_public_key(group: BilinearGroup, payload: dict[str, Any]) -> HVEPublicKey:
    """Rebuild an HVE public key from :func:`serialize_public_key` output."""
    if payload.get("kind") != "hve_public_key":
        raise ValueError("payload is not a serialized HVE public key")
    return HVEPublicKey(
        group=group,
        width=int(payload["width"]),
        g_q=_decode_g(group, payload["g_q"]),
        v_blinded=_decode_g(group, payload["v_blinded"]),
        a_pair=_decode_gt(group, payload["a_pair"]),
        u_blinded=tuple(_decode_g(group, e) for e in payload["u_blinded"]),
        h_blinded=tuple(_decode_g(group, e) for e in payload["h_blinded"]),
        w_blinded=tuple(_decode_g(group, e) for e in payload["w_blinded"]),
    )


# ----------------------------------------------------------------------
# Secret key
# ----------------------------------------------------------------------
def serialize_secret_key(secret_key: HVESecretKey) -> dict[str, Any]:
    """Serialize an HVE secret key (trusted-authority storage / backup)."""
    return {
        "kind": "hve_secret_key",
        "width": secret_key.width,
        "g_q": _encode_g(secret_key.g_q),
        "a": _encode_int(secret_key.a),
        "g": _encode_g(secret_key.g),
        "v": _encode_g(secret_key.v),
        "u": [_encode_g(e) for e in secret_key.u],
        "h": [_encode_g(e) for e in secret_key.h],
        "w": [_encode_g(e) for e in secret_key.w],
    }


def deserialize_secret_key(group: BilinearGroup, payload: dict[str, Any]) -> HVESecretKey:
    """Rebuild an HVE secret key from :func:`serialize_secret_key` output."""
    if payload.get("kind") != "hve_secret_key":
        raise ValueError("payload is not a serialized HVE secret key")
    return HVESecretKey(
        group=group,
        width=int(payload["width"]),
        g_q=_decode_g(group, payload["g_q"]),
        a=_decode_int(payload["a"]),
        g=_decode_g(group, payload["g"]),
        v=_decode_g(group, payload["v"]),
        u=tuple(_decode_g(group, e) for e in payload["u"]),
        h=tuple(_decode_g(group, e) for e in payload["h"]),
        w=tuple(_decode_g(group, e) for e in payload["w"]),
    )


# ----------------------------------------------------------------------
# Ciphertext
# ----------------------------------------------------------------------
def serialize_ciphertext(ciphertext: HVECiphertext) -> dict[str, Any]:
    """Serialize a ciphertext as uploaded by a mobile user."""
    return {
        "kind": "hve_ciphertext",
        "width": ciphertext.width,
        "c_prime": _encode_gt(ciphertext.c_prime),
        "c0": _encode_g(ciphertext.c0),
        "c1": [_encode_g(e) for e in ciphertext.c1],
        "c2": [_encode_g(e) for e in ciphertext.c2],
    }


def deserialize_ciphertext(group: BilinearGroup, payload: dict[str, Any]) -> HVECiphertext:
    """Rebuild a ciphertext from :func:`serialize_ciphertext` output."""
    if payload.get("kind") != "hve_ciphertext":
        raise ValueError("payload is not a serialized HVE ciphertext")
    return HVECiphertext(
        width=int(payload["width"]),
        c_prime=_decode_gt(group, payload["c_prime"]),
        c0=_decode_g(group, payload["c0"]),
        c1=tuple(_decode_g(group, e) for e in payload["c1"]),
        c2=tuple(_decode_g(group, e) for e in payload["c2"]),
    )


# ----------------------------------------------------------------------
# Token
# ----------------------------------------------------------------------
def serialize_token(token: HVEToken) -> dict[str, Any]:
    """Serialize a search token as sent by the trusted authority to the SP."""
    return {
        "kind": "hve_token",
        "pattern": token.pattern,
        "k0": _encode_g(token.k0),
        "k1": {str(i): _encode_g(e) for i, e in token.k1.items()},
        "k2": {str(i): _encode_g(e) for i, e in token.k2.items()},
    }


def deserialize_token(group: BilinearGroup, payload: dict[str, Any]) -> HVEToken:
    """Rebuild a search token from :func:`serialize_token` output."""
    if payload.get("kind") != "hve_token":
        raise ValueError("payload is not a serialized HVE token")
    return HVEToken(
        pattern=payload["pattern"],
        k0=_decode_g(group, payload["k0"]),
        k1={int(i): _decode_g(group, e) for i, e in payload["k1"].items()},
        k2={int(i): _decode_g(group, e) for i, e in payload["k2"].items()},
    )


# ----------------------------------------------------------------------
# Generic helpers
# ----------------------------------------------------------------------
def to_json(payload: dict[str, Any]) -> str:
    """Render a serialized payload as canonical (sorted-key) JSON."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def from_json(text: str) -> dict[str, Any]:
    """Parse a payload previously rendered with :func:`to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("expected a JSON object payload")
    return payload


def payload_size_bytes(payload: dict[str, Any]) -> int:
    """Size in bytes of the canonical JSON encoding of ``payload``."""
    return len(to_json(payload).encode("utf-8"))
