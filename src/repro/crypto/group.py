"""Composite-order symmetric bilinear group (ideal-group-model simulation).

The HVE construction of Section 2.1 of the paper requires a symmetric bilinear
map ``e: G x G -> GT`` where ``G`` and ``GT`` are cyclic groups of composite
order ``N = P * Q`` (``P``, ``Q`` large primes) and, for all ``a, b in G`` and
``u, v in Z``, ``e(a^u, b^v) = e(a, b)^(u*v)``.

Real instantiations use supersingular elliptic-curve pairings, which are not
practical to implement from scratch in pure Python.  Because every algorithm
in the paper -- key generation, encryption, token generation and the query
evaluation -- manipulates group elements only through the abstract group
operations (multiplication, exponentiation, pairing), we can instead run the
construction in the *ideal group model*: an element ``g^x`` is represented by
the exponent ``x mod N`` hidden inside an opaque object.  All algebraic
identities (bilinearity, subgroup orthogonality of ``G_p`` and ``G_q`` under
the pairing, cancellation of blinding factors) then hold *exactly*, and the
paper's cost metric -- the number of pairing evaluations, proportional to the
number of non-star symbols in tokens -- is preserved verbatim.

The group additionally supports a configurable *pairing work factor* so that
wall-clock benchmarks reflect the fact that pairings dominate the cost of real
HVE: each pairing call optionally performs a number of large modular
exponentiations before returning.

All big-integer arithmetic is delegated to a pluggable
:class:`~repro.crypto.backends.base.GroupBackend` (see
:mod:`repro.crypto.backends`): the group converts its order and prime factors
into the backend's native number type once at construction, after which every
element exponent -- and therefore every group operation, pairing and work-
factor burn -- runs on backend arithmetic.  The pure-Python ``reference``
backend reproduces the seed behaviour exactly; the optional ``gmpy2`` backend
is numerically identical but faster, and is auto-selected when installed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Optional, Sequence, Union

from repro.crypto.backends import (
    FixedBaseTable,
    FusedProgram,
    FusedWorklist,
    GroupBackend,
    get_backend,
)
from repro.crypto.counting import PairingCounter
from repro.crypto.primes import generate_distinct_primes

__all__ = ["BilinearGroup", "GroupElement", "GTElement", "GroupParams"]


@dataclass(frozen=True)
class GroupParams:
    """Public parameters describing a composite-order bilinear group."""

    n: int
    prime_bits: int

    @property
    def modulus_bits(self) -> int:
        """Bit length of the composite group order ``N``."""
        return self.n.bit_length()


class GroupElement:
    """An element of the source group ``G`` of composite order ``N``.

    Internally the element is the discrete logarithm of ``g^x`` to the fixed
    generator ``g``; the exponent is private to the crypto layer and never
    exposed through ``__repr__`` or serialization used by the service
    provider.
    """

    __slots__ = ("_group", "_exp")

    def __init__(self, group: "BilinearGroup", exponent: int):
        self._group = group
        self._exp = exponent % group.order

    @property
    def group(self) -> "BilinearGroup":
        """The group this element belongs to."""
        return self._group

    def _require_same_group(self, other: "GroupElement") -> None:
        if self._group is not other._group:
            raise ValueError("cannot combine elements from different groups")

    def __mul__(self, other: "GroupElement") -> "GroupElement":
        if not isinstance(other, GroupElement):
            return NotImplemented
        self._require_same_group(other)
        return GroupElement(self._group, self._exp + other._exp)

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        if not isinstance(other, GroupElement):
            return NotImplemented
        self._require_same_group(other)
        return GroupElement(self._group, self._exp - other._exp)

    def __pow__(self, scalar: int) -> "GroupElement":
        if not isinstance(scalar, int):
            return NotImplemented
        # Exponentiation is multiplication in dlog space; a scalar wider than
        # the group order is reduced first so the intermediate product stays
        # bounded by ~2x the order's size (the constructor reduces the result
        # anyway, so outcomes are unchanged).
        if scalar.bit_length() > self._group._order_bits:
            scalar %= self._group._n
        return GroupElement(self._group, self._exp * scalar)

    def inverse(self) -> "GroupElement":
        """Multiplicative inverse in ``G``."""
        return GroupElement(self._group, -self._exp)

    def is_identity(self) -> bool:
        """True if this is the identity element of ``G``."""
        return self._exp == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupElement):
            return NotImplemented
        return self._group is other._group and self._exp == other._exp

    def __hash__(self) -> int:
        return hash(("G", id(self._group), self._exp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupElement(<hidden>, group_order_bits={self._group.order.bit_length()})"

    # The exponent is exposed only to the serialization module through a
    # deliberately underscored accessor.
    def _discrete_log(self) -> int:
        return self._exp


class GTElement:
    """An element of the target group ``GT`` of composite order ``N``."""

    __slots__ = ("_group", "_exp")

    def __init__(self, group: "BilinearGroup", exponent: int):
        self._group = group
        self._exp = exponent % group.order

    @property
    def group(self) -> "BilinearGroup":
        """The group this element belongs to."""
        return self._group

    def _require_same_group(self, other: "GTElement") -> None:
        if self._group is not other._group:
            raise ValueError("cannot combine elements from different groups")

    def __mul__(self, other: "GTElement") -> "GTElement":
        if not isinstance(other, GTElement):
            return NotImplemented
        self._require_same_group(other)
        return GTElement(self._group, self._exp + other._exp)

    def __truediv__(self, other: "GTElement") -> "GTElement":
        if not isinstance(other, GTElement):
            return NotImplemented
        self._require_same_group(other)
        return GTElement(self._group, self._exp - other._exp)

    def __pow__(self, scalar: int) -> "GTElement":
        if not isinstance(scalar, int):
            return NotImplemented
        # See GroupElement.__pow__: pre-reduce oversized scalars mod N.
        if scalar.bit_length() > self._group._order_bits:
            scalar %= self._group._n
        return GTElement(self._group, self._exp * scalar)

    def inverse(self) -> "GTElement":
        """Multiplicative inverse in ``GT``."""
        return GTElement(self._group, -self._exp)

    def is_identity(self) -> bool:
        """True if this is the identity element of ``GT``."""
        return self._exp == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return self._group is other._group and self._exp == other._exp

    def __hash__(self) -> int:
        return hash(("GT", id(self._group), self._exp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GTElement(<hidden>, group_order_bits={self._group.order.bit_length()})"

    def _discrete_log(self) -> int:
        return self._exp


class BilinearGroup:
    """A symmetric bilinear group of composite order ``N = P * Q``.

    Parameters
    ----------
    prime_bits:
        Bit length of each of the two primes ``P`` and ``Q``.  128 bits per
        prime (256-bit ``N``) is the default; tests use smaller groups for
        speed.
    rng:
        Random source used for prime generation and random sampling.  Pass a
        seeded :class:`random.Random` for reproducible experiments.
    pairing_work_factor:
        Number of extra large modular exponentiations performed per pairing
        call.  ``0`` (default) makes pairings cheap; a positive value lets
        wall-clock benchmarks approximate the relative cost profile of a real
        pairing backend, where pairings are orders of magnitude more expensive
        than group operations.
    counter:
        Optional shared :class:`PairingCounter`; one is created if omitted.
    backend:
        Arithmetic backend: a registered backend name (``"reference"``,
        ``"gmpy2"``), a live :class:`~repro.crypto.backends.base.GroupBackend`
        instance, or ``None`` for auto-selection (environment override via
        ``REPRO_CRYPTO_BACKEND``, then the best available backend).
    """

    def __init__(
        self,
        prime_bits: int = 128,
        rng: Optional[random.Random] = None,
        pairing_work_factor: int = 0,
        counter: Optional[PairingCounter] = None,
        backend: Optional[Union[str, GroupBackend]] = None,
    ):
        if prime_bits < 16:
            raise ValueError(f"prime_bits must be >= 16, got {prime_bits}")
        self._rng = rng or random.Random()
        p, q = generate_distinct_primes(prime_bits, count=2, rng=self._rng)
        self._bind_numbers(p, q, prime_bits, pairing_work_factor, counter, backend)

    @classmethod
    def from_primes(
        cls,
        p: int,
        q: int,
        pairing_work_factor: int = 0,
        counter: Optional[PairingCounter] = None,
        backend: Optional[Union[str, GroupBackend]] = None,
        rng: Optional[random.Random] = None,
    ) -> "BilinearGroup":
        """Rebuild a group from known prime factors (no prime generation).

        This is how a group crosses a process boundary (see
        :func:`repro.crypto.serialization.group_to_wire`) and how tests pin
        two backends to numerically identical groups.  The caller is trusted
        to supply distinct primes -- typically ones a previous
        :class:`BilinearGroup` generated.
        """
        if p == q:
            raise ValueError("the two prime factors must be distinct")
        group = cls.__new__(cls)
        group._rng = rng or random.Random()
        prime_bits = min(int(p).bit_length(), int(q).bit_length())
        group._bind_numbers(p, q, prime_bits, pairing_work_factor, counter, backend)
        return group

    def _bind_numbers(
        self,
        p: int,
        q: int,
        prime_bits: int,
        pairing_work_factor: int,
        counter: Optional[PairingCounter],
        backend: Optional[Union[str, GroupBackend]],
    ) -> None:
        """Convert the group constants into backend-native numbers once."""
        self.backend = get_backend(backend)
        make = self.backend.make_int
        self._p = make(p)
        self._q = make(q)
        self._n = self._p * self._q
        self._prime_bits = prime_bits
        self._pairing_work_factor = pairing_work_factor
        self._order_bits = int(self._n).bit_length()
        self.counter = counter if counter is not None else PairingCounter()
        # A fixed odd modulus, base and exponent schedule used only to burn
        # pairing work.  Everything is converted to backend-native numbers
        # here, once: the burn loop is the hottest call site in work-factor
        # benchmarks, and a per-call conversion (or rebuilding `N | 3` per
        # call) would cost a large-integer allocation per burned powmod.
        # Each simulated pairing burns ``pairing_work_factor`` *fixed-base*
        # exponentiations of the work base; the exponents vary per scheduled
        # step (the hoisted ``N | 3`` plus a small even offset, so each stays
        # odd and full-width) -- equal work to the seed's burn, but open to
        # fixed-base precomputation.
        self._work_modulus = self._n | 1
        self._work_base = make(0xC0FFEE) % self._work_modulus
        self._work_exponent = self._n | 3
        self._work_exponents = tuple(
            self._work_exponent + (step << 1) for step in range(pairing_work_factor)
        )
        # The fixed-base table for the work base: built lazily on the first
        # burn (or eagerly via warm_precomputation) when the backend says the
        # modulus is big enough for the table walk to win.
        self._work_table: Optional[FixedBaseTable] = None
        self._work_table_decided = False
        #: Modular exponentiations served from fixed-base precomputation
        #: tables (plus HVE per-key program hits); surfaced through
        #: :class:`~repro.protocol.matching.PassStats` as ``precomp_hits``.
        self.precomp_hits = 0
        self._last_work = None

    # ------------------------------------------------------------------
    # Public parameters
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The composite group order ``N = P * Q``."""
        return self._n

    @property
    def p(self) -> int:
        """The prime ``P`` (secret in a real deployment; used by key setup)."""
        return self._p

    @property
    def q(self) -> int:
        """The prime ``Q`` (secret in a real deployment; used by key setup)."""
        return self._q

    @property
    def prime_bits(self) -> int:
        """Bit length of each prime factor."""
        return self._prime_bits

    @property
    def pairing_work_factor(self) -> int:
        """Modular exponentiations burned per pairing (wall-clock cost model)."""
        return self._pairing_work_factor

    @property
    def backend_name(self) -> str:
        """Registry name of the arithmetic backend this group runs on."""
        return self.backend.name

    def params(self) -> GroupParams:
        """Return the public group parameters (order only, not the factors)."""
        return GroupParams(n=self._n, prime_bits=self._prime_bits)

    # ------------------------------------------------------------------
    # Element constructors
    # ------------------------------------------------------------------
    @property
    def generator(self) -> GroupElement:
        """A generator ``g`` of the full group ``G``."""
        return GroupElement(self, 1)

    @property
    def gt_generator(self) -> GTElement:
        """The canonical generator ``e(g, g)`` of ``GT``."""
        return GTElement(self, 1)

    def identity(self) -> GroupElement:
        """The identity of ``G``."""
        return GroupElement(self, 0)

    def gt_identity(self) -> GTElement:
        """The identity of ``GT``."""
        return GTElement(self, 0)

    def element_from_exponent(self, exponent: int) -> GroupElement:
        """Return ``g**exponent`` (used by deserialization and tests)."""
        return GroupElement(self, exponent)

    def gt_element_from_exponent(self, exponent: int) -> GTElement:
        """Return ``e(g, g)**exponent`` (used by deserialization and tests)."""
        return GTElement(self, exponent)

    # ------------------------------------------------------------------
    # Random sampling
    # ------------------------------------------------------------------
    def random_zn(self) -> int:
        """Uniform scalar in ``Z_N``, non-zero modulo *both* prime factors.

        A scalar that is ``0 mod P`` (a multiple of ``P``) collapses any
        ``G_p`` component it exponentiates, and symmetrically for ``Q``: a
        blinding factor ``z = g_q ** s`` with ``s ≡ 0 (mod Q)`` silently
        degenerates to the identity and the ciphertext component it was meant
        to blind is exposed.  Sampling therefore rejects multiples of either
        prime (an event of probability ``~2^-prime_bits``, so the loop is
        effectively free).
        """
        while True:
            scalar = self._rng.randrange(1, self._n)
            if scalar % self._p and scalar % self._q:
                return scalar

    def random_zp(self) -> int:
        """Uniform scalar in ``Z_P``, guaranteed non-zero mod ``P``.

        The sample is drawn from ``[1, P)`` so it can never be ``0 mod P``.
        """
        return self._rng.randrange(1, self._p)

    def random_zq(self) -> int:
        """Uniform scalar in ``Z_Q``, guaranteed non-zero mod ``Q``.

        The sample is drawn from ``[1, Q)`` so it can never be ``0 mod Q``.
        """
        return self._rng.randrange(1, self._q)

    def random_g(self) -> GroupElement:
        """Uniform random element of the full group ``G``."""
        return GroupElement(self, self.random_zn())

    def random_gp_exponent(self) -> int:
        """Discrete log of a uniform random ``G_p`` element (backend-native).

        The exponent-space twin of :meth:`random_gp` -- same rng consumption,
        same distribution -- used by the HVE per-key programs, which work in
        raw exponent arithmetic and must stay bit-identical with the
        element-wise path.
        """
        return self._q * self.random_zp()

    def random_gq_exponent(self) -> int:
        """Discrete log of a uniform random ``G_q`` element (backend-native).

        Exponent-space twin of :meth:`random_gq`; see
        :meth:`random_gp_exponent`.
        """
        return self._p * self.random_zq()

    def random_gp(self) -> GroupElement:
        """Uniform random element of the order-``P`` subgroup ``G_p``.

        Elements of ``G_p`` are exactly the powers of ``g^Q``.
        """
        return GroupElement(self, self.random_gp_exponent())

    def random_gq(self) -> GroupElement:
        """Uniform random element of the order-``Q`` subgroup ``G_q``.

        Elements of ``G_q`` are exactly the powers of ``g^P``.
        """
        return GroupElement(self, self.random_gq_exponent())

    def gp_generator(self) -> GroupElement:
        """The canonical generator ``g^Q`` of ``G_p``."""
        return GroupElement(self, self._q)

    def gq_generator(self) -> GroupElement:
        """The canonical generator ``g^P`` of ``G_q``."""
        return GroupElement(self, self._p)

    def random_gt(self) -> GTElement:
        """Uniform random element of ``GT``."""
        return GTElement(self, self.random_zn())

    def random_message(self) -> GTElement:
        """Random plaintext message in the subgroup ``GT_p``.

        HVE messages must live in the order-``P`` part of ``GT`` so that the
        ``G_q`` blinding factors cancel during ``Query``; this mirrors the
        Boneh-Waters construction where ``M`` is chosen in the image of
        ``e(g_p, g_p)``.
        """
        return GTElement(self, self._q * self.random_zp())

    # ------------------------------------------------------------------
    # Membership predicates
    # ------------------------------------------------------------------
    def in_gp(self, element: GroupElement) -> bool:
        """True if ``element`` lies in the order-``P`` subgroup ``G_p``."""
        return element._discrete_log() % self._q == 0

    def in_gq(self, element: GroupElement) -> bool:
        """True if ``element`` lies in the order-``Q`` subgroup ``G_q``."""
        return element._discrete_log() % self._p == 0

    # ------------------------------------------------------------------
    # The pairing
    # ------------------------------------------------------------------
    def pair(self, a: GroupElement, b: GroupElement) -> GTElement:
        """Evaluate the symmetric bilinear map ``e(a, b)``.

        Every call is recorded by the group's :class:`PairingCounter`; the
        count of these calls is the paper's primary cost metric.
        """
        if a.group is not self or b.group is not self:
            raise ValueError("pairing arguments must belong to this group")
        self.counter.record_pairing()
        if self._pairing_work_factor:
            self._burn_pairing_work()
        return GTElement(self, a._discrete_log() * b._discrete_log())

    def record_pairings(self, count: int) -> None:
        """Account for ``count`` pairings evaluated by a fused arithmetic path.

        Fused evaluation (``pair_product``, ``HVE.query_via_plan``) computes
        several pairings' worth of exponent arithmetic without going through
        :meth:`pair`; this method keeps the :class:`PairingCounter` and the
        pairing work factor exactly in step with the element-wise path, so the
        paper's cost metric is identical whichever path ran.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self.counter.record_pairing(count)
        if self._pairing_work_factor:
            self._burn(count)

    def pair_product(self, pairs: Iterable[tuple[GroupElement, GroupElement]]) -> GTElement:
        """Product of pairings ``prod_i e(a_i, b_i)`` via fused exponent arithmetic.

        Equivalent to multiplying the results of :meth:`pair` over ``pairs``
        but without allocating one :class:`GTElement` per pairing: the
        discrete logs are accumulated directly -- no intermediate list of
        term tuples either -- and reduced mod ``N`` once at the end.  The
        exponents are already backend-native numbers (they were reduced
        modulo the native group order at element construction), so the
        accumulation runs on backend arithmetic without any conversion.
        ``pairs`` may be any iterable, including a generator.  Exactly one
        pairing per pair is recorded (and the same pairing work is burned),
        so cost accounting matches the element-wise path.
        """
        acc = 0
        count = 0
        for a, b in pairs:
            if a.group is not self or b.group is not self:
                raise ValueError("pairing arguments must belong to this group")
            acc += a._exp * b._exp
            count += 1
        self.record_pairings(count)
        return GTElement(self, acc)

    def _burn_pairing_work(self) -> None:
        """Burn one pairing's worth of modular exponentiations (cost model)."""
        self._burn(1)

    def _burn(self, pairings: int) -> None:
        """Burn ``pairings`` rounds of the work schedule in one backend call.

        Every round performs ``pairing_work_factor`` fixed-base modular
        exponentiations -- the same count whether the burns arrive one
        :meth:`pair` at a time or batched through :meth:`record_pairings`,
        and whether or not the fixed-base table serves them.  The last power
        is stored as the ``_last_work`` witness parity tests compare across
        paths and backends.
        """
        table = self._work_table
        if table is None and not self._work_table_decided:
            table = self._ensure_work_table()
        self._last_work = self.backend.burn_powmods(
            self._work_base,
            self._work_exponents,
            self._work_modulus,
            repeats=pairings,
            table=table,
        )
        if table is not None:
            self.precomp_hits += pairings * len(self._work_exponents)

    # ------------------------------------------------------------------
    # Fixed-base precomputation (work-burn acceleration)
    # ------------------------------------------------------------------
    def _ensure_work_table(self) -> Optional[FixedBaseTable]:
        """Build the work-base table if this backend/modulus profits from one."""
        self._work_table_decided = True
        if not self._pairing_work_factor:
            return None
        threshold = self.backend.fixed_base_min_bits
        if threshold is None or int(self._work_modulus).bit_length() < threshold:
            return None
        # +2 bits of headroom: the schedule's exponents are N|3 plus a small
        # offset, and an undersized table would fall back to scalar powmods
        # for the top bits.
        self._work_table = self.backend.make_fixed_base(
            self._work_base, self._work_modulus, max_bits=self._order_bits + 2
        )
        return self._work_table

    def warm_precomputation(self, force: bool = False) -> float:
        """Build the fixed-base work table now; returns the build seconds.

        Idempotent and cheap when nothing is to build (work factor 0, table
        already decided, or the backend declares tables unprofitable for this
        modulus -- override the latter with ``force=True``, used by parity
        tests on deliberately tiny groups).  Benchmarks call this before
        timing so first-pass numbers do not include table construction.
        """
        start = perf_counter()
        if self._work_table is None:
            if force and self._pairing_work_factor:
                self._work_table_decided = True
                self._work_table = self.backend.make_fixed_base(
                    self._work_base, self._work_modulus, max_bits=self._order_bits + 2
                )
            elif not self._work_table_decided:
                self._ensure_work_table()
        return perf_counter() - start

    def precomputation_to_wire(self) -> Optional[tuple]:
        """Wire form of the work table (``None`` when no table is active).

        Called by :func:`repro.crypto.serialization.group_to_wire` after
        warming, so worker lanes inherit the parent's precomputation instead
        of rebuilding it per process.
        """
        if self._work_table is None:
            return None
        return self._work_table.to_wire()

    def install_precomputation(self, wire: Optional[tuple]) -> None:
        """Adopt a table shipped by :meth:`precomputation_to_wire`.

        Ignored when there is nothing to install, when this backend never
        profits from tables, or when a table is already live (tables for one
        (base, modulus) pair are interchangeable, so the resident one wins).
        """
        if wire is None or self._work_table is not None:
            return
        if self.backend.fixed_base_min_bits is None:
            return
        self._work_table = FixedBaseTable.from_wire(wire, self.backend.make_int)
        self._work_table_decided = True

    # ------------------------------------------------------------------
    # Fused evaluation (backend-executed worklists)
    # ------------------------------------------------------------------
    def fused_eval(
        self,
        program: FusedProgram,
        jobs: Sequence[tuple],
        worklist: Optional[FusedWorklist] = None,
        keys: Optional[Sequence] = None,
    ) -> tuple[list[list[bool]], int]:
        """Run a compiled evaluation worklist on the backend, fully accounted.

        Hands the whole worklist to
        :meth:`~repro.crypto.backends.base.GroupBackend.fused_eval` -- no
        per-pairing Python dispatch, one counter-lock acquisition and one
        batched burn for the entire list -- then records exactly the pairings
        the backend charged, keeping :class:`PairingCounter` totals and burn
        counts bit-exact with the element-wise and planned scalar paths.

        With a resident ``worklist``
        (:meth:`~repro.crypto.backends.base.GroupBackend.make_fused_worklist`)
        and per-job ``keys``, the packed-column path runs instead -- same
        rows, same pairings; passes served from already-packed columns are
        counted as precomputation hits.
        """
        if worklist is not None:
            hits_before = worklist.column_hits
            rows, pairings = worklist.evaluate(jobs, keys)
            self.precomp_hits += worklist.column_hits - hits_before
        else:
            rows, pairings = self.backend.fused_eval(program, jobs)
        self.record_pairings(pairings)
        return rows, pairings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BilinearGroup(prime_bits={self._prime_bits}, "
            f"order_bits={self._n.bit_length()}, backend={self.backend.name!r})"
        )
