"""Probabilistic prime generation for composite-order group construction.

The HVE construction of Boneh-Waters operates in a bilinear group whose order
is a product of two large primes ``N = P * Q``.  This module provides the
prime machinery: Miller-Rabin primality testing and random prime generation of
a requested bit length, with a deterministic mode (seeded RNG) so experiments
are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["is_probable_prime", "generate_prime", "generate_distinct_primes"]

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]

# Deterministic witness set valid for all 64-bit integers.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """Run one Miller-Rabin round; return True if ``n`` passes for witness ``a``."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 24, rng: Optional[random.Random] = None) -> bool:
    """Return True if ``n`` is (very probably) prime.

    Uses trial division by small primes followed by Miller-Rabin.  For values
    below 2**64 the deterministic witness set is used and the answer is exact.

    Parameters
    ----------
    n:
        Candidate integer.
    rounds:
        Number of random Miller-Rabin rounds for large candidates.
    rng:
        Optional random source (for reproducibility of witness choice).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 1 << 64:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or random.Random()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    Parameters
    ----------
    bits:
        Bit length of the prime; must be at least 8.
    rng:
        Random source.  Pass a seeded :class:`random.Random` for reproducible
        key material in tests and experiments.
    """
    if bits < 8:
        raise ValueError(f"prime bit length must be >= 8, got {bits}")
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits)
        # Force exact bit length and oddness.
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_distinct_primes(bits: int, count: int = 2, rng: Optional[random.Random] = None) -> list[int]:
    """Generate ``count`` distinct primes of ``bits`` bits each."""
    rng = rng or random.Random()
    primes: list[int] = []
    while len(primes) < count:
        p = generate_prime(bits, rng=rng)
        if p not in primes:
            primes.append(p)
    return primes
