"""Cryptographic substrate for the secure location-based alert protocol.

This package implements the searchable-encryption machinery the paper builds
on:

* :mod:`repro.crypto.backends` -- pluggable big-integer arithmetic backends
  (pure-Python reference, optional GMP acceleration via ``gmpy2``) behind the
  :class:`~repro.crypto.backends.base.GroupBackend` interface.
* :mod:`repro.crypto.primes` -- probabilistic prime generation (Miller-Rabin)
  used to build composite-order groups.
* :mod:`repro.crypto.group` -- a composite-order symmetric bilinear group
  ``e: G x G -> GT`` in the *ideal group model*: elements are represented by
  their discrete logarithms modulo ``N = P * Q``, so every algebraic identity
  of a real pairing group holds exactly, while remaining implementable in pure
  Python.  See ``DESIGN.md`` (substitution 1) for why this preserves the
  behaviour the paper measures.
* :mod:`repro.crypto.hve` -- Hidden Vector Encryption (Boneh-Waters style) with
  ``Setup``, ``Encrypt``, ``GenToken`` and ``Query`` exactly as laid out in
  Section 2.1 of the paper.
* :mod:`repro.crypto.counting` -- pairing-operation accounting, the paper's
  cost metric.
* :mod:`repro.crypto.serialization` -- stable byte-level serialization of keys,
  ciphertexts and tokens (what would travel on the wire between users, the TA
  and the SP).
"""

from repro.crypto.backends import (
    GroupBackend,
    available_backends,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.crypto.counting import PairingCounter, pairing_cost_of_token, pairing_cost_of_tokens
from repro.crypto.group import BilinearGroup, GroupElement, GTElement
from repro.crypto.hve import (
    HVE,
    HVECiphertext,
    HVEKeyPair,
    HVEPublicKey,
    HVESecretKey,
    HVEToken,
    STAR,
)

__all__ = [
    "BilinearGroup",
    "GroupElement",
    "GTElement",
    "HVE",
    "HVECiphertext",
    "HVEKeyPair",
    "HVEPublicKey",
    "HVESecretKey",
    "HVEToken",
    "STAR",
    "PairingCounter",
    "pairing_cost_of_token",
    "pairing_cost_of_tokens",
    "GroupBackend",
    "available_backends",
    "backend_names",
    "default_backend_name",
    "get_backend",
    "register_backend",
]
