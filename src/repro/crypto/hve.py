"""Hidden Vector Encryption (HVE) over a composite-order bilinear group.

This is the searchable-encryption primitive of the paper (Section 2.1),
following the Boneh-Waters construction.  The four phases are implemented
exactly as specified:

``Setup``
    Produces a public key ``PK`` (used by mobile users to encrypt their grid
    index) and a secret key ``SK`` (held by the trusted authority and used to
    derive search tokens).

``Encrypt``
    Encrypts a message ``M in GT`` under an attribute vector ``I`` of width
    ``l`` (the bit string identifying the user's grid cell, zero-padded to the
    reference length).

``GenToken``
    Given a pattern ``I*`` over ``{0, 1, *}`` (the output of token
    minimization), produces a search token whose evaluation cost is
    proportional to the number of non-star positions.

``Query``
    Evaluated by the service provider: recovers ``M`` when the ciphertext
    attribute matches the token pattern on every non-star position and an
    unrelated element (``⊥``) otherwise.  The provider learns nothing beyond
    the match outcome.

The bit width ``l`` is the *reference length* (RL) of the coding scheme: all
indexes are padded to the same length so ciphertexts are indistinguishable by
size (Section 3.2 / Section 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

from repro.crypto.counting import non_star_count
from repro.crypto.group import BilinearGroup, GroupElement, GTElement

__all__ = [
    "STAR",
    "HVE",
    "HVEKeyPair",
    "HVEPublicKey",
    "HVESecretKey",
    "HVECiphertext",
    "HVEToken",
]

#: The wildcard ("don't care") symbol of token patterns.
STAR = "*"

_VALID_INDEX_SYMBOLS = {"0", "1"}
_VALID_PATTERN_SYMBOLS = {"0", "1", STAR}


def _validate_index(index: str, width: int) -> None:
    if len(index) != width:
        raise ValueError(f"index length {len(index)} does not match HVE width {width}")
    invalid = set(index) - _VALID_INDEX_SYMBOLS
    if invalid:
        raise ValueError(f"index may only contain 0/1 symbols, found {sorted(invalid)}")


def _validate_pattern(pattern: str, width: int) -> None:
    if len(pattern) != width:
        raise ValueError(f"pattern length {len(pattern)} does not match HVE width {width}")
    invalid = set(pattern) - _VALID_PATTERN_SYMBOLS
    if invalid:
        raise ValueError(f"pattern may only contain 0/1/* symbols, found {sorted(invalid)}")


@dataclass(frozen=True)
class HVEPublicKey:
    """HVE public key: what mobile users need to encrypt their location.

    Attributes mirror the Setup equations of Section 2.1: ``g_q`` generates
    the blinding subgroup ``G_q``; ``V = v * R_v``; ``A = e(g, v)^a``; and for
    every position ``i`` of the attribute vector, ``U_i = u_i * R_u,i``,
    ``H_i = h_i * R_h,i`` and ``W_i = w_i * R_w,i``.
    """

    group: BilinearGroup
    width: int
    g_q: GroupElement
    v_blinded: GroupElement
    a_pair: GTElement
    u_blinded: tuple[GroupElement, ...]
    h_blinded: tuple[GroupElement, ...]
    w_blinded: tuple[GroupElement, ...]

    def __post_init__(self) -> None:
        for name, seq in (("u_blinded", self.u_blinded), ("h_blinded", self.h_blinded), ("w_blinded", self.w_blinded)):
            if len(seq) != self.width:
                raise ValueError(f"{name} must have exactly width={self.width} elements")


@dataclass(frozen=True)
class HVESecretKey:
    """HVE secret key, held by the trusted authority only."""

    group: BilinearGroup
    width: int
    g_q: GroupElement
    a: int
    g: GroupElement
    v: GroupElement
    u: tuple[GroupElement, ...]
    h: tuple[GroupElement, ...]
    w: tuple[GroupElement, ...]

    def __post_init__(self) -> None:
        for name, seq in (("u", self.u), ("h", self.h), ("w", self.w)):
            if len(seq) != self.width:
                raise ValueError(f"{name} must have exactly width={self.width} elements")


@dataclass(frozen=True)
class HVEKeyPair:
    """The (public, secret) key pair produced by ``Setup``."""

    public: HVEPublicKey
    secret: HVESecretKey

    @property
    def width(self) -> int:
        """HVE width ``l`` (the reference length of the encoding)."""
        return self.public.width


@dataclass(frozen=True)
class HVECiphertext:
    """Encrypted location update submitted by a mobile user.

    ``c_prime`` hides the message; ``c0`` and the per-position pairs
    ``(c1[i], c2[i])`` carry the attribute vector in blinded form.  All
    ciphertexts produced for a given key have identical shape, so the service
    provider cannot distinguish users by ciphertext size (Section 5).
    """

    width: int
    c_prime: GTElement
    c0: GroupElement
    c1: tuple[GroupElement, ...]
    c2: tuple[GroupElement, ...]

    def __post_init__(self) -> None:
        if len(self.c1) != self.width or len(self.c2) != self.width:
            raise ValueError("ciphertext component count must equal the HVE width")


@dataclass(frozen=True)
class HVEToken:
    """Search token derived by the trusted authority for one pattern.

    ``pattern`` is the plaintext pattern over ``{0, 1, *}``; in the system
    model the pattern's star positions are public (they determine which
    ciphertext components participate in the query) while the key material
    ``k0``, ``k1``, ``k2`` hides the concrete non-star values.
    """

    pattern: str
    k0: GroupElement
    k1: dict[int, GroupElement]
    k2: dict[int, GroupElement]

    @property
    def width(self) -> int:
        """Token width (equals the HVE width)."""
        return len(self.pattern)

    # The three cost attributes below are on the matching hot path (consulted
    # once per (ciphertext, token) evaluation); ``cached_property`` computes
    # each exactly once per token instead of rebuilding a tuple per query.
    @cached_property
    def non_star_positions(self) -> tuple[int, ...]:
        """Indices where the pattern requires an exact bit match (cached)."""
        return tuple(i for i, symbol in enumerate(self.pattern) if symbol != STAR)

    @cached_property
    def non_star_count(self) -> int:
        """Number of non-star symbols (determines the pairing cost, cached)."""
        return non_star_count(self.pattern)

    @cached_property
    def pairing_cost(self) -> int:
        """Pairings needed to evaluate this token against one ciphertext."""
        return 1 + 2 * self.non_star_count


class HVE:
    """Hidden Vector Encryption engine bound to one bilinear group.

    Parameters
    ----------
    width:
        The attribute/pattern bit length ``l``; this equals the reference
        length (RL) of the grid encoding in the alert protocol.
    group:
        An existing :class:`BilinearGroup` to operate in.  When omitted, a new
        group is generated with ``prime_bits`` bits per prime factor.
    prime_bits:
        Prime size used when ``group`` is not supplied.
    rng:
        Random source for key generation, encryption and token generation.
    backend:
        Arithmetic backend name/instance for the group created when ``group``
        is not supplied (``None`` auto-selects; see
        :mod:`repro.crypto.backends`).  Ignored when ``group`` is passed.

    Example
    -------
    >>> hve = HVE(width=3, prime_bits=32, rng=random.Random(7))
    >>> keys = hve.setup()
    >>> ct = hve.encrypt(keys.public, "110")
    >>> token = hve.generate_token(keys.secret, "1*0")
    >>> hve.matches(ct, token)
    True
    """

    def __init__(
        self,
        width: int,
        group: Optional[BilinearGroup] = None,
        prime_bits: int = 128,
        rng: Optional[random.Random] = None,
        backend: Optional[str] = None,
    ):
        if width < 1:
            raise ValueError(f"HVE width must be >= 1, got {width}")
        self._rng = rng or random.Random()
        if group is None:
            group = BilinearGroup(prime_bits=prime_bits, rng=self._rng, backend=backend)
        self.group = group
        self.width = width
        # The canonical "match" plaintext: e(g_p, g_p) where g_p generates G_p.
        # Living in the order-P part of GT guarantees the G_q blinding factors
        # cancel, and being a fixed public constant lets the service provider
        # recognise a successful match without learning anything else.
        self._match_message = self.group.gt_element_from_exponent(self.group.q * self.group.q)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> HVEKeyPair:
        """Generate an HVE key pair for this width (Section 2.1, Setup)."""
        group = self.group
        g = group.gp_generator()
        v = group.random_gp()
        a = group.random_zp()
        u = tuple(group.random_gp() for _ in range(self.width))
        h = tuple(group.random_gp() for _ in range(self.width))
        w = tuple(group.random_gp() for _ in range(self.width))
        g_q = group.gq_generator()

        secret = HVESecretKey(group=group, width=self.width, g_q=g_q, a=a, g=g, v=v, u=u, h=h, w=w)

        r_v = group.random_gq()
        v_blinded = v * r_v
        a_pair = group.pair(g, v) ** a
        u_blinded = tuple(u[i] * group.random_gq() for i in range(self.width))
        h_blinded = tuple(h[i] * group.random_gq() for i in range(self.width))
        w_blinded = tuple(w[i] * group.random_gq() for i in range(self.width))

        public = HVEPublicKey(
            group=group,
            width=self.width,
            g_q=g_q,
            v_blinded=v_blinded,
            a_pair=a_pair,
            u_blinded=u_blinded,
            h_blinded=h_blinded,
            w_blinded=w_blinded,
        )
        return HVEKeyPair(public=public, secret=secret)

    # ------------------------------------------------------------------
    # Encrypt
    # ------------------------------------------------------------------
    @property
    def match_message(self) -> GTElement:
        """The fixed public plaintext encoding "user is in the alert zone"."""
        return self._match_message

    def encrypt(self, public_key: HVEPublicKey, index: str, message: Optional[GTElement] = None) -> HVECiphertext:
        """Encrypt ``message`` under attribute vector ``index`` (Section 2.1, Encryption).

        Parameters
        ----------
        public_key:
            The HVE public key.
        index:
            Bit string of length ``width`` -- the user's padded grid index.
        message:
            Optional plaintext in ``GT``.  When omitted, the canonical match
            message is used, which is what the alert protocol does: the
            service provider only needs to learn the boolean match outcome.
        """
        if public_key.width != self.width:
            raise ValueError("public key width does not match this HVE instance")
        _validate_index(index, self.width)
        group = self.group
        if message is None:
            message = self._match_message
        elif message.group is not group:
            raise ValueError("message must belong to this HVE instance's group")

        s = group.random_zn()
        z = group.random_gq()
        c_prime = message * (public_key.a_pair ** s)
        c0 = (public_key.v_blinded ** s) * z

        c1: list[GroupElement] = []
        c2: list[GroupElement] = []
        for i, bit in enumerate(index):
            z_i1 = group.random_gq()
            z_i2 = group.random_gq()
            u_term = public_key.u_blinded[i] ** int(bit)
            c1.append(((u_term * public_key.h_blinded[i]) ** s) * z_i1)
            c2.append((public_key.w_blinded[i] ** s) * z_i2)

        return HVECiphertext(width=self.width, c_prime=c_prime, c0=c0, c1=tuple(c1), c2=tuple(c2))

    # ------------------------------------------------------------------
    # Token generation
    # ------------------------------------------------------------------
    def generate_token(self, secret_key: HVESecretKey, pattern: str) -> HVEToken:
        """Derive a search token for ``pattern`` (Section 2.1, Token Generation).

        ``pattern`` is a string over ``{0, 1, *}`` of length ``width``; star
        positions are "don't care" and contribute no pairing cost.
        """
        if secret_key.width != self.width:
            raise ValueError("secret key width does not match this HVE instance")
        _validate_pattern(pattern, self.width)
        group = self.group

        non_star = [i for i, symbol in enumerate(pattern) if symbol != STAR]
        k0 = secret_key.g ** secret_key.a
        k1: dict[int, GroupElement] = {}
        k2: dict[int, GroupElement] = {}
        for i in non_star:
            r_i1 = group.random_zp()
            r_i2 = group.random_zp()
            bit = int(pattern[i])
            u_term = secret_key.u[i] ** bit
            k0 = k0 * (((u_term * secret_key.h[i]) ** r_i1) * (secret_key.w[i] ** r_i2))
            k1[i] = secret_key.v ** r_i1
            k2[i] = secret_key.v ** r_i2

        return HVEToken(pattern=pattern, k0=k0, k1=k1, k2=k2)

    def generate_tokens(self, secret_key: HVESecretKey, patterns: Sequence[str]) -> list[HVEToken]:
        """Derive one token per pattern."""
        return [self.generate_token(secret_key, pattern) for pattern in patterns]

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, ciphertext: HVECiphertext, token: HVEToken) -> GTElement:
        """Evaluate ``token`` on ``ciphertext`` (Section 2.1, Query).

        Returns the recovered ``GT`` element.  When the ciphertext attribute
        satisfies the token's pattern this equals the original plaintext; in
        the alert protocol (canonical match message), use :meth:`matches` to
        obtain the boolean outcome directly.
        """
        if ciphertext.width != self.width or token.width != self.width:
            raise ValueError("ciphertext/token width does not match this HVE instance")
        group = self.group

        denominator = group.pair(ciphertext.c0, token.k0)
        for i in token.non_star_positions:
            denominator = denominator / (
                group.pair(ciphertext.c1[i], token.k1[i]) * group.pair(ciphertext.c2[i], token.k2[i])
            )
        return ciphertext.c_prime / denominator

    def _query_exponent(self, ciphertext: HVECiphertext, token: HVEToken, positions: Sequence[int]) -> int:
        """Fused-arithmetic core of ``Query``: the result's discrete log (unreduced).

        Computes ``C' / (e(C_0, K_0) / prod_i e(C_i1, K_i1) * e(C_i2, K_i2))``
        entirely in exponent space: each pairing is one integer product, the
        per-position products fold into a running sum, and no intermediate
        :class:`GroupElement`/:class:`GTElement` is allocated.  The group is
        charged for exactly ``1 + 2 * len(positions)`` pairings, the same
        count the element-wise :meth:`query` incurs.
        """
        denominator = ciphertext.c0._discrete_log() * token.k0._discrete_log()
        c1, c2, k1, k2 = ciphertext.c1, ciphertext.c2, token.k1, token.k2
        for i in positions:
            denominator -= c1[i]._discrete_log() * k1[i]._discrete_log() + c2[i]._discrete_log() * k2[i]._discrete_log()
        self.group.record_pairings(1 + 2 * len(positions))
        return ciphertext.c_prime._discrete_log() - denominator

    def query_via_plan(
        self,
        ciphertext: HVECiphertext,
        token: HVEToken,
        non_star_positions: Optional[Sequence[int]] = None,
    ) -> GTElement:
        """Fast-path ``Query``: identical result and pairing count to :meth:`query`.

        ``non_star_positions`` lets a caller that already planned the token
        (see :class:`~repro.protocol.matching.TokenPlan`) supply the cached
        position tuple; when omitted the token's own cached positions are
        used.
        """
        if ciphertext.width != self.width or token.width != self.width:
            raise ValueError("ciphertext/token width does not match this HVE instance")
        positions = token.non_star_positions if non_star_positions is None else non_star_positions
        return GTElement(self.group, self._query_exponent(ciphertext, token, positions))

    def matches_via_plan(
        self,
        ciphertext: HVECiphertext,
        token: HVEToken,
        non_star_positions: Optional[Sequence[int]] = None,
    ) -> bool:
        """Fast-path :meth:`matches`: boolean outcome with zero element allocations."""
        if ciphertext.width != self.width or token.width != self.width:
            raise ValueError("ciphertext/token width does not match this HVE instance")
        positions = token.non_star_positions if non_star_positions is None else non_star_positions
        exponent = self._query_exponent(ciphertext, token, positions)
        return exponent % self.group.order == self._match_message._discrete_log()

    def matches(self, ciphertext: HVECiphertext, token: HVEToken) -> bool:
        """True if the ciphertext's attribute vector satisfies the token's pattern.

        This is what the service provider computes for every stored ciphertext
        whenever an alert zone is declared.
        """
        return self.query(ciphertext, token) == self._match_message

    def matches_any(self, ciphertext: HVECiphertext, tokens: Sequence[HVEToken]) -> bool:
        """True if the ciphertext matches at least one of ``tokens``.

        Evaluation short-circuits on the first match, mirroring what a real
        service provider would do; the pairing counter therefore reflects the
        actual work performed.
        """
        return any(self.matches(ciphertext, token) for token in tokens)
