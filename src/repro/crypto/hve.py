"""Hidden Vector Encryption (HVE) over a composite-order bilinear group.

This is the searchable-encryption primitive of the paper (Section 2.1),
following the Boneh-Waters construction.  The four phases are implemented
exactly as specified:

``Setup``
    Produces a public key ``PK`` (used by mobile users to encrypt their grid
    index) and a secret key ``SK`` (held by the trusted authority and used to
    derive search tokens).

``Encrypt``
    Encrypts a message ``M in GT`` under an attribute vector ``I`` of width
    ``l`` (the bit string identifying the user's grid cell, zero-padded to the
    reference length).

``GenToken``
    Given a pattern ``I*`` over ``{0, 1, *}`` (the output of token
    minimization), produces a search token whose evaluation cost is
    proportional to the number of non-star positions.

``Query``
    Evaluated by the service provider: recovers ``M`` when the ciphertext
    attribute matches the token pattern on every non-star position and an
    unrelated element (``⊥``) otherwise.  The provider learns nothing beyond
    the match outcome.

The bit width ``l`` is the *reference length* (RL) of the coding scheme: all
indexes are padded to the same length so ciphertexts are indistinguishable by
size (Section 3.2 / Section 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

from repro.crypto.counting import non_star_count
from repro.crypto.group import BilinearGroup, GroupElement, GTElement

__all__ = [
    "STAR",
    "HVE",
    "HVEKeyPair",
    "HVEPublicKey",
    "HVESecretKey",
    "HVECiphertext",
    "HVEToken",
]

#: The wildcard ("don't care") symbol of token patterns.
STAR = "*"

_VALID_INDEX_SYMBOLS = {"0", "1"}
_VALID_PATTERN_SYMBOLS = {"0", "1", STAR}


def _validate_index(index: str, width: int) -> None:
    if len(index) != width:
        raise ValueError(f"index length {len(index)} does not match HVE width {width}")
    invalid = set(index) - _VALID_INDEX_SYMBOLS
    if invalid:
        raise ValueError(f"index may only contain 0/1 symbols, found {sorted(invalid)}")


def _validate_pattern(pattern: str, width: int) -> None:
    if len(pattern) != width:
        raise ValueError(f"pattern length {len(pattern)} does not match HVE width {width}")
    invalid = set(pattern) - _VALID_PATTERN_SYMBOLS
    if invalid:
        raise ValueError(f"pattern may only contain 0/1/* symbols, found {sorted(invalid)}")


@dataclass(frozen=True)
class HVEPublicKey:
    """HVE public key: what mobile users need to encrypt their location.

    Attributes mirror the Setup equations of Section 2.1: ``g_q`` generates
    the blinding subgroup ``G_q``; ``V = v * R_v``; ``A = e(g, v)^a``; and for
    every position ``i`` of the attribute vector, ``U_i = u_i * R_u,i``,
    ``H_i = h_i * R_h,i`` and ``W_i = w_i * R_w,i``.
    """

    group: BilinearGroup
    width: int
    g_q: GroupElement
    v_blinded: GroupElement
    a_pair: GTElement
    u_blinded: tuple[GroupElement, ...]
    h_blinded: tuple[GroupElement, ...]
    w_blinded: tuple[GroupElement, ...]

    def __post_init__(self) -> None:
        for name, seq in (("u_blinded", self.u_blinded), ("h_blinded", self.h_blinded), ("w_blinded", self.w_blinded)):
            if len(seq) != self.width:
                raise ValueError(f"{name} must have exactly width={self.width} elements")


@dataclass(frozen=True)
class HVESecretKey:
    """HVE secret key, held by the trusted authority only."""

    group: BilinearGroup
    width: int
    g_q: GroupElement
    a: int
    g: GroupElement
    v: GroupElement
    u: tuple[GroupElement, ...]
    h: tuple[GroupElement, ...]
    w: tuple[GroupElement, ...]

    def __post_init__(self) -> None:
        for name, seq in (("u", self.u), ("h", self.h), ("w", self.w)):
            if len(seq) != self.width:
                raise ValueError(f"{name} must have exactly width={self.width} elements")


@dataclass(frozen=True)
class HVEKeyPair:
    """The (public, secret) key pair produced by ``Setup``."""

    public: HVEPublicKey
    secret: HVESecretKey

    @property
    def width(self) -> int:
        """HVE width ``l`` (the reference length of the encoding)."""
        return self.public.width


@dataclass(frozen=True)
class HVECiphertext:
    """Encrypted location update submitted by a mobile user.

    ``c_prime`` hides the message; ``c0`` and the per-position pairs
    ``(c1[i], c2[i])`` carry the attribute vector in blinded form.  All
    ciphertexts produced for a given key have identical shape, so the service
    provider cannot distinguish users by ciphertext size (Section 5).
    """

    width: int
    c_prime: GTElement
    c0: GroupElement
    c1: tuple[GroupElement, ...]
    c2: tuple[GroupElement, ...]

    def __post_init__(self) -> None:
        if len(self.c1) != self.width or len(self.c2) != self.width:
            raise ValueError("ciphertext component count must equal the HVE width")

    @cached_property
    def _exponent_rows(self) -> tuple:
        """The ciphertext's discrete logs as flat native tuples (cached).

        This is the job form the fused evaluation path feeds to
        :meth:`~repro.crypto.group.BilinearGroup.fused_eval`; caching it on
        the (immutable) ciphertext means a standing alert re-evaluated every
        tick extracts each resident ciphertext's exponents exactly once.
        """
        return (
            self.c_prime._discrete_log(),
            self.c0._discrete_log(),
            tuple(e._discrete_log() for e in self.c1),
            tuple(e._discrete_log() for e in self.c2),
        )


@dataclass(frozen=True)
class HVEToken:
    """Search token derived by the trusted authority for one pattern.

    ``pattern`` is the plaintext pattern over ``{0, 1, *}``; in the system
    model the pattern's star positions are public (they determine which
    ciphertext components participate in the query) while the key material
    ``k0``, ``k1``, ``k2`` hides the concrete non-star values.
    """

    pattern: str
    k0: GroupElement
    k1: dict[int, GroupElement]
    k2: dict[int, GroupElement]

    @property
    def width(self) -> int:
        """Token width (equals the HVE width)."""
        return len(self.pattern)

    # The three cost attributes below are on the matching hot path (consulted
    # once per (ciphertext, token) evaluation); ``cached_property`` computes
    # each exactly once per token instead of rebuilding a tuple per query.
    @cached_property
    def non_star_positions(self) -> tuple[int, ...]:
        """Indices where the pattern requires an exact bit match (cached)."""
        return tuple(i for i, symbol in enumerate(self.pattern) if symbol != STAR)

    @cached_property
    def non_star_count(self) -> int:
        """Number of non-star symbols (determines the pairing cost, cached)."""
        return non_star_count(self.pattern)

    @cached_property
    def pairing_cost(self) -> int:
        """Pairings needed to evaluate this token against one ciphertext."""
        return 1 + 2 * self.non_star_count


class _EncryptProgram:
    """Per-public-key precomputation for :meth:`HVE.encrypt`.

    Encryption exponentiates the *same* key elements for every ciphertext
    (``A``, ``V``, and per position ``U_i * H_i`` / ``H_i`` / ``W_i``) -- the
    fixed-base pattern.  In the ideal-group model a fixed-base table
    degenerates to caching those elements' discrete logs once per key, after
    which each ciphertext component is raw native exponent arithmetic with no
    element allocation and no operator dispatch.  Random sampling order is
    identical to the element-wise path, so ciphertexts are bit-identical.
    """

    __slots__ = ("a_pair", "v", "h", "uh", "w")

    def __init__(self, public_key: HVEPublicKey):
        group_order = public_key.group.order
        self.a_pair = public_key.a_pair._discrete_log()
        self.v = public_key.v_blinded._discrete_log()
        self.h = tuple(e._discrete_log() for e in public_key.h_blinded)
        # The "bit is 1" base (U_i * H_i), pre-reduced like the element
        # product would be.
        self.uh = tuple(
            (u._discrete_log() + h) % group_order
            for u, h in zip(public_key.u_blinded, self.h)
        )
        self.w = tuple(e._discrete_log() for e in public_key.w_blinded)


class _TokenProgram:
    """Per-secret-key precomputation for :meth:`HVE.generate_token`.

    Same idea as :class:`_EncryptProgram` for the token side: the fixed bases
    ``g^a``, ``V`` and per position ``U_i * H_i`` / ``H_i`` / ``W_i`` are
    resolved to native discrete logs once per key.
    """

    __slots__ = ("k0_base", "v", "h", "uh", "w")

    def __init__(self, secret_key: HVESecretKey):
        group_order = secret_key.group.order
        self.k0_base = secret_key.g._discrete_log() * secret_key.a % group_order
        self.v = secret_key.v._discrete_log()
        self.h = tuple(e._discrete_log() for e in secret_key.h)
        self.uh = tuple(
            (u._discrete_log() + h) % group_order for u, h in zip(secret_key.u, self.h)
        )
        self.w = tuple(e._discrete_log() for e in secret_key.w)


class HVE:
    """Hidden Vector Encryption engine bound to one bilinear group.

    Parameters
    ----------
    width:
        The attribute/pattern bit length ``l``; this equals the reference
        length (RL) of the grid encoding in the alert protocol.
    group:
        An existing :class:`BilinearGroup` to operate in.  When omitted, a new
        group is generated with ``prime_bits`` bits per prime factor.
    prime_bits:
        Prime size used when ``group`` is not supplied.
    rng:
        Random source for key generation, encryption and token generation.
    backend:
        Arithmetic backend name/instance for the group created when ``group``
        is not supplied (``None`` auto-selects; see
        :mod:`repro.crypto.backends`).  Ignored when ``group`` is passed.

    Example
    -------
    >>> hve = HVE(width=3, prime_bits=32, rng=random.Random(7))
    >>> keys = hve.setup()
    >>> ct = hve.encrypt(keys.public, "110")
    >>> token = hve.generate_token(keys.secret, "1*0")
    >>> hve.matches(ct, token)
    True
    """

    def __init__(
        self,
        width: int,
        group: Optional[BilinearGroup] = None,
        prime_bits: int = 128,
        rng: Optional[random.Random] = None,
        backend: Optional[str] = None,
    ):
        if width < 1:
            raise ValueError(f"HVE width must be >= 1, got {width}")
        self._rng = rng or random.Random()
        if group is None:
            group = BilinearGroup(prime_bits=prime_bits, rng=self._rng, backend=backend)
        self.group = group
        self.width = width
        # The canonical "match" plaintext: e(g_p, g_p) where g_p generates G_p.
        # Living in the order-P part of GT guarantees the G_q blinding factors
        # cancel, and being a fixed public constant lets the service provider
        # recognise a successful match without learning anything else.
        self._match_message = self.group.gt_element_from_exponent(self.group.q * self.group.q)
        self._match_exp = self._match_message._discrete_log()
        # Per-key precomputed programs (the HVE face of the fixed-base
        # contract): keyed by key-object identity, capped small -- a
        # deployment works with one key pair, tests with a handful.  Values
        # hold a strong reference to the key, so an id() can never be reused
        # while its entry is alive.
        self._encrypt_programs: dict[int, tuple[HVEPublicKey, _EncryptProgram]] = {}
        self._token_programs: dict[int, tuple[HVESecretKey, _TokenProgram]] = {}

    _PROGRAM_CACHE_SIZE = 4

    def _encrypt_program(self, public_key: HVEPublicKey) -> _EncryptProgram:
        entry = self._encrypt_programs.get(id(public_key))
        if entry is not None and entry[0] is public_key:
            self.group.precomp_hits += 1
            return entry[1]
        program = _EncryptProgram(public_key)
        cache = self._encrypt_programs
        cache[id(public_key)] = (public_key, program)
        while len(cache) > self._PROGRAM_CACHE_SIZE:
            cache.pop(next(iter(cache)))
        return program

    def _token_program(self, secret_key: HVESecretKey) -> _TokenProgram:
        entry = self._token_programs.get(id(secret_key))
        if entry is not None and entry[0] is secret_key:
            self.group.precomp_hits += 1
            return entry[1]
        program = _TokenProgram(secret_key)
        cache = self._token_programs
        cache[id(secret_key)] = (secret_key, program)
        while len(cache) > self._PROGRAM_CACHE_SIZE:
            cache.pop(next(iter(cache)))
        return program

    def warm_precomputation(
        self,
        public_key: Optional[HVEPublicKey] = None,
        secret_key: Optional[HVESecretKey] = None,
    ) -> float:
        """Build the group work table and per-key programs now; returns seconds.

        Benchmarks call this before their timed region so throughput numbers
        never include one-off precomputation; the build cost is reported as
        its own column instead.
        """
        import time

        start = time.perf_counter()
        self.group.warm_precomputation()
        if public_key is not None:
            self._encrypt_program(public_key)
        if secret_key is not None:
            self._token_program(secret_key)
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> HVEKeyPair:
        """Generate an HVE key pair for this width (Section 2.1, Setup)."""
        group = self.group
        g = group.gp_generator()
        v = group.random_gp()
        a = group.random_zp()
        u = tuple(group.random_gp() for _ in range(self.width))
        h = tuple(group.random_gp() for _ in range(self.width))
        w = tuple(group.random_gp() for _ in range(self.width))
        g_q = group.gq_generator()

        secret = HVESecretKey(group=group, width=self.width, g_q=g_q, a=a, g=g, v=v, u=u, h=h, w=w)

        # Blinding multiplies each fixed key element by a fresh G_q sample --
        # raw exponent adds here (same rng draws, same reductions) instead of
        # one element allocation per component.  The pairing for ``A`` stays
        # an honest :meth:`BilinearGroup.pair` call: it is counted and burned
        # like every other pairing.
        element = GroupElement
        v_blinded = element(group, v._discrete_log() + group.random_gq_exponent())
        a_pair = group.pair(g, v) ** a
        u_blinded = tuple(
            element(group, u[i]._discrete_log() + group.random_gq_exponent())
            for i in range(self.width)
        )
        h_blinded = tuple(
            element(group, h[i]._discrete_log() + group.random_gq_exponent())
            for i in range(self.width)
        )
        w_blinded = tuple(
            element(group, w[i]._discrete_log() + group.random_gq_exponent())
            for i in range(self.width)
        )

        public = HVEPublicKey(
            group=group,
            width=self.width,
            g_q=g_q,
            v_blinded=v_blinded,
            a_pair=a_pair,
            u_blinded=u_blinded,
            h_blinded=h_blinded,
            w_blinded=w_blinded,
        )
        return HVEKeyPair(public=public, secret=secret)

    # ------------------------------------------------------------------
    # Encrypt
    # ------------------------------------------------------------------
    @property
    def match_message(self) -> GTElement:
        """The fixed public plaintext encoding "user is in the alert zone"."""
        return self._match_message

    def encrypt(self, public_key: HVEPublicKey, index: str, message: Optional[GTElement] = None) -> HVECiphertext:
        """Encrypt ``message`` under attribute vector ``index`` (Section 2.1, Encryption).

        Parameters
        ----------
        public_key:
            The HVE public key.
        index:
            Bit string of length ``width`` -- the user's padded grid index.
        message:
            Optional plaintext in ``GT``.  When omitted, the canonical match
            message is used, which is what the alert protocol does: the
            service provider only needs to learn the boolean match outcome.
        """
        if public_key.width != self.width:
            raise ValueError("public key width does not match this HVE instance")
        _validate_index(index, self.width)
        group = self.group
        if message is None:
            message_exp = self._match_exp
        elif message.group is not group:
            raise ValueError("message must belong to this HVE instance's group")
        else:
            message_exp = message._discrete_log()

        # Raw exponent arithmetic over the per-key program: each component is
        # one multiply-add on native numbers, with rng draws in exactly the
        # element-wise order (s; z; then z_i1, z_i2 per position), so the
        # ciphertext is bit-identical to the seed path's.
        program = self._encrypt_program(public_key)
        element = GroupElement
        s = group.random_zn()
        z = group.random_gq_exponent()
        c_prime = GTElement(group, message_exp + program.a_pair * s)
        c0 = element(group, program.v * s + z)

        h, uh, w = program.h, program.uh, program.w
        c1: list[GroupElement] = []
        c2: list[GroupElement] = []
        for i, bit in enumerate(index):
            z_i1 = group.random_gq_exponent()
            z_i2 = group.random_gq_exponent()
            base = uh[i] if bit == "1" else h[i]
            c1.append(element(group, base * s + z_i1))
            c2.append(element(group, w[i] * s + z_i2))

        return HVECiphertext(width=self.width, c_prime=c_prime, c0=c0, c1=tuple(c1), c2=tuple(c2))

    # ------------------------------------------------------------------
    # Token generation
    # ------------------------------------------------------------------
    def generate_token(self, secret_key: HVESecretKey, pattern: str) -> HVEToken:
        """Derive a search token for ``pattern`` (Section 2.1, Token Generation).

        ``pattern`` is a string over ``{0, 1, *}`` of length ``width``; star
        positions are "don't care" and contribute no pairing cost.
        """
        if secret_key.width != self.width:
            raise ValueError("secret key width does not match this HVE instance")
        _validate_pattern(pattern, self.width)
        group = self.group

        # Same program-driven exponent arithmetic as encrypt: K_0 accumulates
        # native multiply-adds, K_1/K_2 are single products, rng draws stay in
        # the element-wise order (r_i1, r_i2 per non-star position).
        program = self._token_program(secret_key)
        element = GroupElement
        h, uh, w, v = program.h, program.uh, program.w, program.v
        k0_exp = program.k0_base
        k1: dict[int, GroupElement] = {}
        k2: dict[int, GroupElement] = {}
        for i, symbol in enumerate(pattern):
            if symbol == STAR:
                continue
            r_i1 = group.random_zp()
            r_i2 = group.random_zp()
            base = uh[i] if symbol == "1" else h[i]
            k0_exp += base * r_i1 + w[i] * r_i2
            k1[i] = element(group, v * r_i1)
            k2[i] = element(group, v * r_i2)

        return HVEToken(pattern=pattern, k0=element(group, k0_exp), k1=k1, k2=k2)

    def generate_tokens(self, secret_key: HVESecretKey, patterns: Sequence[str]) -> list[HVEToken]:
        """Derive one token per pattern."""
        return [self.generate_token(secret_key, pattern) for pattern in patterns]

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, ciphertext: HVECiphertext, token: HVEToken) -> GTElement:
        """Evaluate ``token`` on ``ciphertext`` (Section 2.1, Query).

        Returns the recovered ``GT`` element.  When the ciphertext attribute
        satisfies the token's pattern this equals the original plaintext; in
        the alert protocol (canonical match message), use :meth:`matches` to
        obtain the boolean outcome directly.
        """
        if ciphertext.width != self.width or token.width != self.width:
            raise ValueError("ciphertext/token width does not match this HVE instance")
        group = self.group

        denominator = group.pair(ciphertext.c0, token.k0)
        for i in token.non_star_positions:
            denominator = denominator / (
                group.pair(ciphertext.c1[i], token.k1[i]) * group.pair(ciphertext.c2[i], token.k2[i])
            )
        return ciphertext.c_prime / denominator

    def _query_exponent(self, ciphertext: HVECiphertext, token: HVEToken, positions: Sequence[int]) -> int:
        """Fused-arithmetic core of ``Query``: the result's discrete log (unreduced).

        Computes ``C' / (e(C_0, K_0) / prod_i e(C_i1, K_i1) * e(C_i2, K_i2))``
        entirely in exponent space: each pairing is one integer product, the
        per-position products fold into a running sum, and no intermediate
        :class:`GroupElement`/:class:`GTElement` is allocated.  The group is
        charged for exactly ``1 + 2 * len(positions)`` pairings, the same
        count the element-wise :meth:`query` incurs.
        """
        denominator = ciphertext.c0._discrete_log() * token.k0._discrete_log()
        c1, c2, k1, k2 = ciphertext.c1, ciphertext.c2, token.k1, token.k2
        for i in positions:
            denominator -= c1[i]._discrete_log() * k1[i]._discrete_log() + c2[i]._discrete_log() * k2[i]._discrete_log()
        self.group.record_pairings(1 + 2 * len(positions))
        return ciphertext.c_prime._discrete_log() - denominator

    def query_via_plan(
        self,
        ciphertext: HVECiphertext,
        token: HVEToken,
        non_star_positions: Optional[Sequence[int]] = None,
    ) -> GTElement:
        """Fast-path ``Query``: identical result and pairing count to :meth:`query`.

        ``non_star_positions`` lets a caller that already planned the token
        (see :class:`~repro.protocol.matching.TokenPlan`) supply the cached
        position tuple; when omitted the token's own cached positions are
        used.
        """
        if ciphertext.width != self.width or token.width != self.width:
            raise ValueError("ciphertext/token width does not match this HVE instance")
        positions = token.non_star_positions if non_star_positions is None else non_star_positions
        return GTElement(self.group, self._query_exponent(ciphertext, token, positions))

    def matches_via_plan(
        self,
        ciphertext: HVECiphertext,
        token: HVEToken,
        non_star_positions: Optional[Sequence[int]] = None,
    ) -> bool:
        """Fast-path :meth:`matches`: boolean outcome with zero element allocations."""
        if ciphertext.width != self.width or token.width != self.width:
            raise ValueError("ciphertext/token width does not match this HVE instance")
        positions = token.non_star_positions if non_star_positions is None else non_star_positions
        exponent = self._query_exponent(ciphertext, token, positions)
        return exponent % self.group.order == self._match_exp

    def matches(self, ciphertext: HVECiphertext, token: HVEToken) -> bool:
        """True if the ciphertext's attribute vector satisfies the token's pattern.

        This is what the service provider computes for every stored ciphertext
        whenever an alert zone is declared.
        """
        return self.query(ciphertext, token) == self._match_message

    def matches_any(self, ciphertext: HVECiphertext, tokens: Sequence[HVEToken]) -> bool:
        """True if the ciphertext matches at least one of ``tokens``.

        Evaluation short-circuits on the first match, mirroring what a real
        service provider would do; the pairing counter therefore reflects the
        actual work performed.
        """
        return any(self.matches(ciphertext, token) for token in tokens)
