"""Pluggable arithmetic backends for the crypto layer.

The ideal-group-model :class:`~repro.crypto.group.BilinearGroup` delegates all
big-integer arithmetic to a :class:`~repro.crypto.backends.base.GroupBackend`.
This package holds the backend registry plus the two built-in backends:

* ``reference`` -- pure Python ``int`` arithmetic, always available; the
  ground truth every other backend is validated against.
* ``gmpy2`` -- GMP arithmetic through the optional :mod:`gmpy2` package;
  auto-selected when importable, silently skipped otherwise.

Selection order for :func:`get_backend` when no explicit choice is given:

1. the ``REPRO_CRYPTO_BACKEND`` environment variable, if set;
2. the available registered backend with the highest ``priority``.

Third-party backends register with :func:`register_backend`; anything that
implements the two abstract :class:`GroupBackend` methods (native int
conversion, ``powmod``) plugs in without touching the group, HVE or protocol
layers -- the vectorized contract (``powmod_base_fixed``, ``multi_powmod``,
``burn_powmods``, ``fused_eval``) has generic implementations a backend only
overrides when it can do better natively.

One caveat for custom backends: the process-parallel matching executor
resolves backends *by registry name inside worker processes*.  Workers that
start via ``fork`` inherit the parent's registry, but ``spawn``/``forkserver``
workers re-import this package fresh -- a custom backend must therefore be
registered as an import side effect of an importable module (the way the
built-ins register themselves below) to work with ``executor="process"`` on
those start methods.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.crypto.backends.base import FusedProgram, FusedWorklist, GroupBackend
from repro.crypto.backends.fixedbase import FixedBaseTable
from repro.crypto.backends.gmp import Gmpy2Backend
from repro.crypto.backends.reference import ReferenceBackend

__all__ = [
    "GroupBackend",
    "FusedProgram",
    "FusedWorklist",
    "FixedBaseTable",
    "ReferenceBackend",
    "Gmpy2Backend",
    "register_backend",
    "backend_names",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "BACKEND_ENV_VAR",
]

#: Environment variable that forces a backend for the whole process.
BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"

_REGISTRY: dict[str, type[GroupBackend]] = {}
_INSTANCES: dict[str, GroupBackend] = {}


def register_backend(backend_cls: type[GroupBackend]) -> type[GroupBackend]:
    """Register a backend class under its ``name`` (usable as a decorator).

    Re-registering a name replaces the previous class, which lets tests and
    downstream packages shadow a built-in backend.
    """
    name = getattr(backend_cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("a backend class must define a non-empty string 'name'")
    _REGISTRY[name] = backend_cls
    _INSTANCES.pop(name, None)
    return backend_cls


def backend_names() -> list[str]:
    """All registered backend names, best priority first."""
    return sorted(_REGISTRY, key=lambda n: (-_REGISTRY[n].priority, n))


def available_backends() -> list[str]:
    """Registered backends whose dependencies are importable, best first."""
    return [name for name in backend_names() if _REGISTRY[name].available()]


def default_backend_name() -> str:
    """The backend :func:`get_backend` resolves to without an explicit choice.

    An environment override is validated immediately: a typo in
    ``REPRO_CRYPTO_BACKEND`` fails here, at the misconfiguration, rather
    than at some later group construction.
    """
    forced = os.environ.get(BACKEND_ENV_VAR)
    if forced:
        if forced not in _REGISTRY:
            raise ValueError(
                f"{BACKEND_ENV_VAR}={forced!r} names an unknown crypto backend; "
                f"registered: {backend_names()}"
            )
        if not _REGISTRY[forced].available():
            raise RuntimeError(
                f"{BACKEND_ENV_VAR}={forced!r} names a backend that is unavailable on "
                f"this host (missing dependency); available: {available_backends()}"
            )
        return forced
    candidates = available_backends()
    if not candidates:  # pragma: no cover - reference is always available
        raise RuntimeError("no crypto backend is available")
    return candidates[0]


def get_backend(backend: Optional[Union[str, GroupBackend]] = None) -> GroupBackend:
    """Resolve ``backend`` to a live :class:`GroupBackend` instance.

    Accepts an instance (returned as-is), a registered name, or ``None`` for
    the default selection (environment override, then best available).
    Instances are cached per name: two groups requesting ``"reference"`` share
    one stateless backend object.
    """
    if isinstance(backend, GroupBackend):
        return backend
    name = backend if backend is not None else default_backend_name()
    backend_cls = _REGISTRY.get(name)
    if backend_cls is None:
        raise ValueError(f"unknown crypto backend {name!r}; registered: {backend_names()}")
    if not backend_cls.available():
        raise RuntimeError(
            f"crypto backend {name!r} is registered but unavailable on this host "
            f"(missing dependency); available: {available_backends()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = backend_cls()
        _INSTANCES[name] = instance
    return instance


register_backend(ReferenceBackend)
register_backend(Gmpy2Backend)
