"""The pure-Python reference backend: Python ``int`` arithmetic.

This is the arithmetic the seed implementation ran on, packaged behind the
:class:`~repro.crypto.backends.base.GroupBackend` interface.  It has no
dependencies, works everywhere and is the ground truth the accelerated
backends are tested against.

The vectorized contract is served by the generic base-class implementations
-- Straus interleaving for ``multi_powmod``, windowed fixed-base tables, the
tight-loop fused evaluator -- which are written against plain operators and
therefore *are* the reference semantics.  ``fixed_base_min_bits`` reflects a
CPython fact: the interpreted table walk overtakes the built-in
three-argument ``pow`` once the modulus passes ~96 bits (3-8x faster at the
128-2048 bit sizes the composite-order group uses), while below that the
native ``pow`` is already sub-microsecond and the loop overhead would be a
regression.
"""

from __future__ import annotations

from repro.crypto.backends.base import GroupBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(GroupBackend):
    """Dependency-free backend on CPython's built-in big integers."""

    name = "reference"
    priority = 0
    fixed_base_min_bits = 96

    def make_int(self, value: int) -> int:
        return int(value)

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)
