"""The pure-Python reference backend: Python ``int`` arithmetic.

This is the arithmetic the seed implementation ran on, packaged behind the
:class:`~repro.crypto.backends.base.GroupBackend` interface.  It has no
dependencies, works everywhere and is the ground truth the accelerated
backends are tested against.
"""

from __future__ import annotations

from repro.crypto.backends.base import GroupBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(GroupBackend):
    """Dependency-free backend on CPython's built-in big integers."""

    name = "reference"
    priority = 0

    def make_int(self, value: int) -> int:
        return int(value)

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)
