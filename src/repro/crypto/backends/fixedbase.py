"""Windowed fixed-base precomputation tables for modular exponentiation.

The pairing work factor burns modular exponentiations of one *fixed base*
(the group's work base) under one fixed modulus -- the classic setting for
fixed-base windowing: precompute ``base**(d * 2**(w*j)) mod m`` for every
window row ``j`` and digit ``d``, after which any exponentiation of that base
reduces to one table lookup and one modular multiplication per ``w``-bit
digit, with no squarings at all.

On CPython this beats the built-in three-argument ``pow`` by 3-8x for the
modulus sizes the composite-order group works with (128-2048 bit), because
``pow`` must perform ``~bit_length`` squarings plus multiplications while the
table walk does ``bit_length / w`` multiplications total.  The win is real
only above a backend-dependent modulus size (see
:meth:`~repro.crypto.backends.base.GroupBackend.fixed_base_min_bits`): for
tiny modulus native ``pow`` is already sub-microsecond and the Python loop
overhead dominates, and GMP-backed ``powmod`` is so fast that a Python table
walk never pays off.

Tables are built once per (group, base) and cached on the
:class:`~repro.crypto.group.BilinearGroup`; the wire form lets a parent
process ship its table to matching workers so lanes inherit the
precomputation instead of rebuilding it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["FixedBaseTable"]

#: Wire-form tag, so a corrupted/foreign payload fails loudly.
_WIRE_KIND = "fixed_base_table_v1"


class FixedBaseTable:
    """Precomputed powers of one base modulo one modulus (``2**w``-ary rows).

    Row ``j`` holds ``base ** (d * 2**(window*j)) mod modulus`` for every
    digit ``d < 2**window``; :meth:`pow` scans an exponent ``window`` bits at
    a time and multiplies the matching entries.  Exponents longer than
    ``max_bits`` are handled by one native ``powmod`` of the overflow part,
    so the table never produces a wrong result -- it just stops being a pure
    table walk beyond its sizing.

    All stored numbers are whatever the building backend's ``make_int``
    produced, so the walk stays inside backend-native arithmetic.
    """

    __slots__ = ("base", "modulus", "window", "max_bits", "_rows", "_mask", "_overflow_base", "_wire")

    def __init__(
        self,
        base: Any,
        modulus: Any,
        max_bits: int,
        window: Optional[int] = None,
        _rows: Optional[list] = None,
        _overflow_base: Any = None,
    ):
        if max_bits < 1:
            raise ValueError("max_bits must be positive")
        if window is None:
            window = self.default_window(max_bits)
        if window < 1:
            raise ValueError("window must be positive")
        self.base = base
        self.modulus = modulus
        self.window = window
        self.max_bits = max_bits
        self._mask = (1 << window) - 1
        self._wire: Optional[tuple] = None
        if _rows is not None:
            self._rows = _rows
            self._overflow_base = _overflow_base
        else:
            self._rows, self._overflow_base = self._build(base, modulus, max_bits, window)

    @staticmethod
    def default_window(max_bits: int) -> int:
        """Window width balancing build cost against per-exponent speed.

        ``w=6`` wins for the common 128-768 bit moduli (fewer, cheaper rows);
        ``w=8`` amortises better at the large sizes where each saved
        multiplication is expensive.
        """
        return 6 if max_bits <= 768 else 8

    @staticmethod
    def _build(base: Any, modulus: Any, max_bits: int, window: int) -> tuple[list, Any]:
        rows: list[list] = []
        row_base = base % modulus
        digits = 1 << window
        for _ in range(-(-max_bits // window)):
            row = [1] * digits
            acc = 1
            for d in range(1, digits):
                acc = acc * row_base % modulus
                row[d] = acc
            rows.append(row)
            # The next row's unit is this row's unit raised to 2**window.
            for _ in range(window):
                row_base = row_base * row_base % modulus
        # row_base is now base ** 2**(rows * window): the unit of the first
        # digit *beyond* the table, used to absorb oversized exponents.
        return rows, row_base

    @property
    def entries(self) -> int:
        """Total precomputed multiples held by the table."""
        return sum(len(row) for row in self._rows)

    def pow(self, exponent: Any) -> Any:
        """``base ** exponent mod modulus`` by table walk (exponent >= 0)."""
        if exponent < 0:
            raise ValueError("fixed-base exponents must be non-negative")
        modulus = self.modulus
        mask = self._mask
        window = self.window
        rows = self._rows
        acc = 1
        e = exponent
        for row in rows:
            if not e:
                break
            d = e & mask
            if d:
                acc = acc * row[d] % modulus
            e >>= window
        else:
            if e:
                # Exponent outruns the table sizing: finish with one native
                # powmod of the overflow part.  Correctness never depends on
                # max_bits being a true bound.
                acc = acc * pow(self._overflow_base, e, modulus) % modulus
        return acc % modulus

    # ------------------------------------------------------------------
    # Wire form (ships with the group so worker lanes inherit the table)
    # ------------------------------------------------------------------
    def to_wire(self) -> tuple:
        """Plain-int picklable form; computed once and cached (immutable table)."""
        if self._wire is None:
            self._wire = (
                _WIRE_KIND,
                self.window,
                self.max_bits,
                int(self.base),
                int(self.modulus),
                int(self._overflow_base),
                tuple(tuple(int(v) for v in row) for row in self._rows),
            )
        return self._wire

    @classmethod
    def from_wire(cls, wire: tuple, make_int: Callable[[int], Any] = int) -> "FixedBaseTable":
        """Rebuild a table from :meth:`to_wire` output on the target backend.

        ``make_int`` converts every entry into the receiving backend's native
        number type, so an inherited table walks in native arithmetic exactly
        like a locally built one.
        """
        if not isinstance(wire, tuple) or len(wire) != 7 or wire[0] != _WIRE_KIND:
            raise ValueError("payload is not a serialized fixed-base table")
        _, window, max_bits, base, modulus, overflow_base, rows = wire
        return cls(
            make_int(base),
            make_int(modulus),
            max_bits,
            window=window,
            _rows=[[make_int(v) for v in row] for row in rows],
            _overflow_base=make_int(overflow_base),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FixedBaseTable(window={self.window}, max_bits={self.max_bits}, "
            f"entries={self.entries})"
        )
