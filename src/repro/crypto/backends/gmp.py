"""GMP-accelerated backend via :mod:`gmpy2` (optional dependency).

``gmpy2`` wraps the GMP library; its ``mpz`` integers are substantially faster
than CPython's built-in ``int`` for the 128-512 bit operands the composite-
order group works with, and ``gmpy2.powmod`` is the exact operation the
pairing work factor burns.  The backend is *gated*: importing this module
never fails when ``gmpy2`` is absent -- the backend simply reports itself as
unavailable and auto-selection falls back to the pure-Python reference
backend.

Because ``mpz`` compares and hashes equal to the same-valued ``int`` and
supports the full operator set, groups built on this backend are numerically
indistinguishable from reference-backend groups: same elements, same match
outcomes, same pairing counts.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.backends.base import GroupBackend

__all__ = ["Gmpy2Backend"]

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common case in CI containers
    _gmpy2 = None


class Gmpy2Backend(GroupBackend):
    """GMP big-integer arithmetic through ``gmpy2.mpz`` / ``gmpy2.powmod``."""

    name = "gmpy2"
    priority = 100

    def __init__(self) -> None:
        if _gmpy2 is None:
            raise RuntimeError(
                "the gmpy2 backend requires the 'gmpy2' package; "
                "install it or select the 'reference' backend"
            )
        self._mpz = _gmpy2.mpz
        self._powmod = _gmpy2.powmod

    @classmethod
    def available(cls) -> bool:
        return _gmpy2 is not None

    def make_int(self, value: int) -> Any:
        return self._mpz(value)

    def powmod(self, base: Any, exponent: Any, modulus: Any) -> Any:
        return self._powmod(base, exponent, modulus)
