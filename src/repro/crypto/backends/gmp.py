"""GMP-accelerated backend via :mod:`gmpy2` (optional dependency).

``gmpy2`` wraps the GMP library; its ``mpz`` integers are substantially faster
than CPython's built-in ``int`` for the 128-512 bit operands the composite-
order group works with, and ``gmpy2.powmod`` is the exact operation the
pairing work factor burns.  The backend is *gated*: importing this module
never fails when ``gmpy2`` is absent -- the backend simply reports itself as
unavailable and auto-selection falls back to the pure-Python reference
backend.

Because ``mpz`` compares and hashes equal to the same-valued ``int`` and
supports the full operator set, groups built on this backend are numerically
indistinguishable from reference-backend groups: same elements, same match
outcomes, same pairing counts.

The vectorized contract is implemented as native loops: GMP's C ``powmod``
outruns any interpreted windowing, so ``fixed_base_min_bits`` is ``None``
(the group never builds a table for this backend -- an inherited wire table
is likewise ignored) and ``multi_powmod``/``burn_powmods`` are straight
``gmpy2.powmod`` loops with native multiplication, hoisting every attribute
lookup out of the hot loop.  The fused evaluator is inherited from the base
class: its arithmetic runs on whatever numbers the program carries, which are
``mpz`` for groups bound to this backend.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.crypto.backends.base import GroupBackend
from repro.crypto.backends.fixedbase import FixedBaseTable

__all__ = ["Gmpy2Backend"]

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common case in CI containers
    _gmpy2 = None


class Gmpy2Backend(GroupBackend):
    """GMP big-integer arithmetic through ``gmpy2.mpz`` / ``gmpy2.powmod``."""

    name = "gmpy2"
    priority = 100
    # GMP's C powmod beats a Python-interpreted table walk at every modulus
    # size, so fixed-base precomputation never pays off on this backend.
    fixed_base_min_bits = None

    def __init__(self) -> None:
        if _gmpy2 is None:
            raise RuntimeError(
                "the gmpy2 backend requires the 'gmpy2' package; "
                "install it or select the 'reference' backend"
            )
        self._mpz = _gmpy2.mpz
        self._powmod = _gmpy2.powmod

    @classmethod
    def available(cls) -> bool:
        return _gmpy2 is not None

    def make_int(self, value: int) -> Any:
        return self._mpz(value)

    def powmod(self, base: Any, exponent: Any, modulus: Any) -> Any:
        return self._powmod(base, exponent, modulus)

    # ------------------------------------------------------------------
    # Vectorized contract (gmpy2-native loops)
    # ------------------------------------------------------------------
    def powmod_base_fixed(
        self, base: Any, exponents: Sequence[Any], modulus: Any, table: Optional[FixedBaseTable] = None
    ) -> list:
        # A table walk would *slow this backend down*; ignore any table and
        # run the C powmod per exponent (numerically identical either way).
        powmod = self._powmod
        return [powmod(base, e, modulus) for e in exponents]

    def multi_powmod(self, bases: Sequence[Any], exponents: Sequence[Any], modulus: Any) -> Any:
        if len(bases) != len(exponents):
            raise ValueError("multi_powmod needs one exponent per base")
        if any(e < 0 for e in exponents):
            raise ValueError("multi_powmod exponents must be non-negative")
        powmod = self._powmod
        result = self._mpz(1) % modulus
        for base, exponent in zip(bases, exponents):
            result = result * powmod(base, exponent, modulus) % modulus
        return result

    def burn_powmods(
        self,
        base: Any,
        exponents: Sequence[Any],
        modulus: Any,
        repeats: int = 1,
        table: Optional[FixedBaseTable] = None,
    ) -> Any:
        # Burns are a cost model: every scheduled powmod executes (see the
        # base-class contract); only the per-call dispatch is cheaper here.
        powmod = self._powmod
        acc = base
        for _ in range(repeats):
            for e in exponents:
                acc = powmod(base, e, modulus)
        return acc
