"""The abstract :class:`GroupBackend` interface.

A backend supplies the big-integer arithmetic a
:class:`~repro.crypto.group.BilinearGroup` runs on.  The ideal-group model
represents every group element by its discrete logarithm, so the entire crypto
layer reduces to three operations on large integers:

* conversion of a Python ``int`` into the backend's native number type
  (:meth:`GroupBackend.make_int`) -- the group stores its order and prime
  factors in native form, after which ordinary operators (``+``, ``*``, ``%``)
  stay inside the backend's arithmetic automatically;
* modular exponentiation (:meth:`GroupBackend.powmod`) -- the pairing work
  factor's cost model burns one large ``powmod`` per simulated pairing, which
  is exactly the operation a real pairing library spends its time in.

Everything else -- including the fused accumulation in
:meth:`~repro.crypto.group.BilinearGroup.pair_product` and the planned HVE
query path -- runs on ordinary operators over the converted numbers: every
element exponent is a backend-native number, so those loops stay inside the
backend's arithmetic without any further interface.

Backends must be *drop-in interchangeable*: for identical inputs every backend
returns numerically identical results (the native number type may differ, but
must compare equal to the Python ``int`` of the same value and support the
same operator set).  The protocol layer above never needs to know which
backend is active.

Backends register themselves with :func:`repro.crypto.backends.register_backend`;
selection (auto-detection, environment override, explicit request) lives in
:mod:`repro.crypto.backends`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Sequence

__all__ = ["GroupBackend"]


class GroupBackend(ABC):
    """Arithmetic provider for the ideal-group-model bilinear group.

    Class attributes
    ----------------
    name:
        Registry key of the backend (``"reference"``, ``"gmpy2"``, ...).
    priority:
        Auto-selection rank; when no backend is requested explicitly the
        available backend with the highest priority wins.
    """

    name: ClassVar[str]
    priority: ClassVar[int] = 0

    @classmethod
    def available(cls) -> bool:
        """True if this backend's dependencies are importable on this host."""
        return True

    @abstractmethod
    def make_int(self, value: int) -> Any:
        """Convert ``value`` into the backend's native big-integer type.

        The returned object must behave like the equivalent Python ``int``
        under ``+ - * % ==`` and ``hash``; mixed int/native expressions must
        stay in native arithmetic (which is what makes the conversion pay off:
        the group converts its order once and every reduction modulo it then
        runs natively).
        """

    @abstractmethod
    def powmod(self, base: Any, exponent: Any, modulus: Any) -> Any:
        """``base ** exponent mod modulus`` on native numbers."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
