"""The abstract :class:`GroupBackend` interface.

A backend supplies the big-integer arithmetic a
:class:`~repro.crypto.group.BilinearGroup` runs on.  The ideal-group model
represents every group element by its discrete logarithm, so the entire crypto
layer reduces to three operations on large integers:

* conversion of a Python ``int`` into the backend's native number type
  (:meth:`GroupBackend.make_int`) -- the group stores its order and prime
  factors in native form, after which ordinary operators (``+``, ``*``, ``%``)
  stay inside the backend's arithmetic automatically;
* modular exponentiation (:meth:`GroupBackend.powmod`) -- the pairing work
  factor's cost model burns one large ``powmod`` per simulated pairing, which
  is exactly the operation a real pairing library spends its time in;
* fused sums of products (:meth:`GroupBackend.dot`) -- the accumulation core
  of :meth:`~repro.crypto.group.BilinearGroup.pair_product`, where several
  pairings' worth of exponent arithmetic is folded together without
  intermediate element allocations.  (The planned HVE query path keeps its
  own tight loop, but because every element exponent is a backend-native
  number, that loop runs on backend arithmetic too.)

Backends must be *drop-in interchangeable*: for identical inputs every backend
returns numerically identical results (the native number type may differ, but
must compare equal to the Python ``int`` of the same value and support the
same operator set).  The protocol layer above never needs to know which
backend is active.

Backends register themselves with :func:`repro.crypto.backends.register_backend`;
selection (auto-detection, environment override, explicit request) lives in
:mod:`repro.crypto.backends`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Sequence

__all__ = ["GroupBackend"]


class GroupBackend(ABC):
    """Arithmetic provider for the ideal-group-model bilinear group.

    Class attributes
    ----------------
    name:
        Registry key of the backend (``"reference"``, ``"gmpy2"``, ...).
    priority:
        Auto-selection rank; when no backend is requested explicitly the
        available backend with the highest priority wins.
    """

    name: ClassVar[str]
    priority: ClassVar[int] = 0

    @classmethod
    def available(cls) -> bool:
        """True if this backend's dependencies are importable on this host."""
        return True

    @abstractmethod
    def make_int(self, value: int) -> Any:
        """Convert ``value`` into the backend's native big-integer type.

        The returned object must behave like the equivalent Python ``int``
        under ``+ - * % ==`` and ``hash``; mixed int/native expressions must
        stay in native arithmetic (which is what makes the conversion pay off:
        the group converts its order once and every reduction modulo it then
        runs natively).
        """

    @abstractmethod
    def powmod(self, base: Any, exponent: Any, modulus: Any) -> Any:
        """``base ** exponent mod modulus`` on native numbers."""

    def dot(self, pairs: Sequence[tuple[Any, Any]]) -> Any:
        """Fused sum of products ``sum(a * b for a, b in pairs)`` (unreduced).

        The default implementation is correct for any backend; subclasses
        override it when the native library has a cheaper accumulation path.
        """
        acc = 0
        for a, b in pairs:
            acc += a * b
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
