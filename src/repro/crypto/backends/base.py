"""The abstract :class:`GroupBackend` interface.

A backend supplies the big-integer arithmetic a
:class:`~repro.crypto.group.BilinearGroup` runs on.  The ideal-group model
represents every group element by its discrete logarithm, so the scalar core
of the crypto layer reduces to two operations on large integers:

* conversion of a Python ``int`` into the backend's native number type
  (:meth:`GroupBackend.make_int`) -- the group stores its order and prime
  factors in native form, after which ordinary operators (``+``, ``*``, ``%``)
  stay inside the backend's arithmetic automatically;
* modular exponentiation (:meth:`GroupBackend.powmod`) -- the pairing work
  factor's cost model burns one large ``powmod`` per simulated pairing, which
  is exactly the operation a real pairing library spends its time in.

On top of the scalar core sits the *vectorized contract*: batch entry points
that let a backend run whole work lists without bouncing through per-call
Python dispatch.

* :meth:`GroupBackend.powmod_base_fixed` / :meth:`GroupBackend.make_fixed_base`
  -- fixed-base exponentiation through a windowed precomputation table
  (:class:`~repro.crypto.backends.fixedbase.FixedBaseTable`), built once per
  (group, base) and reused for every burn;
* :meth:`GroupBackend.multi_powmod` -- one product of powers
  ``prod_i bases[i]**exponents[i] mod m`` via Straus-style interleaving
  (shared squarings across all bases);
* :meth:`GroupBackend.burn_powmods` -- the pairing-work burn loop itself.
  Burns are a *cost model*: every scheduled exponentiation must actually
  execute, however redundant it looks -- a backend must never cache, batch
  away or otherwise elide burn work, only compute each exponentiation faster;
* :meth:`GroupBackend.fused_eval` -- a whole per-user HVE evaluation (every
  (ciphertext, token) pair of a worklist, including slot sharing and
  subsumption propagation) in one call, returning outcome rows plus the
  pairing count to account;
* :meth:`GroupBackend.make_fused_worklist` -- a resident packed-column form
  (:class:`FusedWorklist`) of a recurring worklist: ciphertext exponents are
  reduced modulo one prime factor and packed into big-integer columns, so a
  token evaluates against *every* user in a handful of huge multiplications
  instead of a Python loop per user.  A CRT argument keeps the packed path
  bit-exact with :meth:`GroupBackend.fused_eval`.

Backends must be *drop-in interchangeable*: for identical inputs every backend
returns numerically identical results (the native number type may differ, but
must compare equal to the Python ``int`` of the same value and support the
same operator set), identical match outcomes and identical pairing counts.
The protocol layer above never needs to know which backend is active.

Backends register themselves with :func:`repro.crypto.backends.register_backend`;
selection (auto-detection, environment override, explicit request) lives in
:mod:`repro.crypto.backends`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Optional, Sequence

from repro.crypto.backends.fixedbase import FixedBaseTable

__all__ = ["GroupBackend", "FusedProgram", "FusedWorklist"]


@dataclass(frozen=True)
class FusedProgram:
    """A compiled, backend-executable form of one token-plan evaluation.

    Produced once per plan (see
    :func:`repro.protocol.matching._compile_fused_program`) and replayed by
    :meth:`GroupBackend.fused_eval` against many ciphertexts.  Everything is
    pre-resolved to native numbers and flat tuples so the evaluation loop
    touches no group objects, no method dispatch and no locks:

    ``batches``
        Per alert batch, the planned entries in evaluation order.  Each entry
        is ``(slot, k0, pairs, cost)`` where ``slot`` indexes the shared
        outcome cache, ``k0`` is the token's ``K_0`` discrete log, ``pairs``
        holds ``(position, k1, k2)`` triples for the non-star positions and
        ``cost = 1 + 2 * len(pairs)`` is the pairing charge of a fresh
        evaluation.
    ``generalizers``
        The plan's per-slot subsumption edges (``None`` when subsumption is
        off), walked exactly like the scalar planned evaluator walks them.
    ``match_exp`` / ``modulus``
        The canonical match message's discrete log and the group order, both
        backend-native.
    """

    modulus: Any
    match_exp: Any
    batches: tuple[tuple[tuple, ...], ...]
    generalizers: Optional[tuple[tuple[int, ...], ...]]
    #: The group order's prime factorisation ``(p, q)`` -- the ideal-group
    #: simulator knows it, and :class:`FusedWorklist` uses it for the CRT
    #: residue pre-filter.  ``None`` disables the packed resident path.
    factors: Optional[tuple[Any, Any]] = None


class GroupBackend(ABC):
    """Arithmetic provider for the ideal-group-model bilinear group.

    Class attributes
    ----------------
    name:
        Registry key of the backend (``"reference"``, ``"gmpy2"``, ...).
    priority:
        Auto-selection rank; when no backend is requested explicitly the
        available backend with the highest priority wins.
    fixed_base_min_bits:
        Smallest modulus bit length at which this backend's fixed-base table
        walk beats its own scalar :meth:`powmod`; ``None`` when tables never
        pay off (the group then skips building one).  The pure-Python walk
        wins from ~96 bits on CPython; a C-accelerated ``powmod`` is usually
        unbeatable by interpreted table walks at any size.
    """

    name: ClassVar[str]
    priority: ClassVar[int] = 0
    fixed_base_min_bits: ClassVar[Optional[int]] = None

    @classmethod
    def available(cls) -> bool:
        """True if this backend's dependencies are importable on this host."""
        return True

    @abstractmethod
    def make_int(self, value: int) -> Any:
        """Convert ``value`` into the backend's native big-integer type.

        The returned object must behave like the equivalent Python ``int``
        under ``+ - * % ==`` and ``hash``; mixed int/native expressions must
        stay in native arithmetic (which is what makes the conversion pay off:
        the group converts its order once and every reduction modulo it then
        runs natively).
        """

    @abstractmethod
    def powmod(self, base: Any, exponent: Any, modulus: Any) -> Any:
        """``base ** exponent mod modulus`` on native numbers."""

    # ------------------------------------------------------------------
    # Vectorized contract (generic implementations; backends may override)
    # ------------------------------------------------------------------
    def make_fixed_base(self, base: Any, modulus: Any, max_bits: int) -> FixedBaseTable:
        """Build a windowed precomputation table for ``base`` mod ``modulus``.

        ``max_bits`` sizes the table for the exponents the caller intends to
        feed it (oversized exponents still evaluate correctly, just slower).
        """
        return FixedBaseTable(base, modulus, max_bits)

    def powmod_base_fixed(
        self, base: Any, exponents: Sequence[Any], modulus: Any, table: Optional[FixedBaseTable] = None
    ) -> list:
        """``[base ** e mod modulus for e in exponents]`` for one fixed base.

        With ``table`` (a matching :meth:`make_fixed_base` product) each
        exponentiation is a table walk; without one the batch falls back to
        scalar :meth:`powmod` -- same results either way.
        """
        if table is not None:
            tpow = table.pow
            return [tpow(e) for e in exponents]
        powmod = self.powmod
        return [powmod(base, e, modulus) for e in exponents]

    def multi_powmod(self, bases: Sequence[Any], exponents: Sequence[Any], modulus: Any) -> Any:
        """``prod_i bases[i] ** exponents[i] mod modulus`` (one interleaved pass).

        The generic implementation is Straus's algorithm: bases are processed
        in chunks whose bit columns share one squaring chain, with a
        per-chunk table of subset products.  Exponents must be non-negative.
        """
        if len(bases) != len(exponents):
            raise ValueError("multi_powmod needs one exponent per base")
        if any(e < 0 for e in exponents):
            raise ValueError("multi_powmod exponents must be non-negative")
        result = 1 % modulus
        chunk = 6  # 2**6 subset products per table: small build, few mults
        for start in range(0, len(bases), chunk):
            group_bases = [b % modulus for b in bases[start : start + chunk]]
            group_exps = list(exponents[start : start + chunk])
            combos = [1] * (1 << len(group_bases))
            for i, b in enumerate(group_bases):
                step = 1 << i
                for s in range(step):
                    combos[step + s] = combos[s] * b % modulus
            max_bits = max((e.bit_length() for e in group_exps), default=0)
            acc = 1
            for bit in range(max_bits - 1, -1, -1):
                acc = acc * acc % modulus
                index = 0
                for i, e in enumerate(group_exps):
                    index |= ((e >> bit) & 1) << i
                if index:
                    acc = acc * combos[index] % modulus
            result = result * acc % modulus
        return result

    def burn_powmods(
        self,
        base: Any,
        exponents: Sequence[Any],
        modulus: Any,
        repeats: int = 1,
        table: Optional[FixedBaseTable] = None,
    ) -> Any:
        """Execute the pairing-work burn schedule; returns the last power.

        Performs ``repeats`` rounds of ``base ** e mod modulus`` over
        ``exponents`` -- ``repeats * len(exponents)`` modular exponentiations
        in total.  This is a *cost model*, not a computation to optimise
        away: implementations MUST perform every scheduled exponentiation
        (identical inputs included) and may only make each one cheaper, e.g.
        via the fixed-base ``table``.  The returned value feeds the group's
        ``_last_work`` witness, which parity tests compare across paths and
        backends.
        """
        acc = base
        if table is not None:
            tpow = table.pow
            for _ in range(repeats):
                for e in exponents:
                    acc = tpow(e)
        else:
            powmod = self.powmod
            for _ in range(repeats):
                for e in exponents:
                    acc = powmod(base, e, modulus)
        return acc

    def fused_eval(
        self, program: FusedProgram, jobs: Sequence[tuple]
    ) -> tuple[list[list[bool]], int]:
        """Run one compiled evaluation over a worklist of ciphertext jobs.

        Each job is ``(c_prime, c0, c1, c2, needed)``: the ciphertext's
        discrete logs (``c1``/``c2`` indexable by position) plus the batch
        indices still requiring evaluation.  Returns per-job outcome rows
        aligned with ``needed`` and the total pairings consumed, which the
        caller must account via
        :meth:`~repro.crypto.group.BilinearGroup.record_pairings` -- this
        method itself touches no counter and burns no work.

        Semantics replicate the scalar planned evaluator bit-exactly: shared
        slot outcomes per job, ancestor-failure short-circuits and
        true-backfill along the subsumption edges, per-batch short-circuit on
        the first matching token, and a charge of ``cost`` pairings for
        exactly the entries that are freshly evaluated.
        """
        modulus = program.modulus
        match_exp = program.match_exp
        batches = program.batches
        generalizers = program.generalizers
        pairings = 0
        rows: list[list[bool]] = []
        for c_prime, c0, c1, c2, needed in jobs:
            shared: dict[int, bool] = {}
            shared_get = shared.get
            row: list[bool] = []
            for index in needed:
                matched = False
                for slot, k0, pairs, cost in batches[index]:
                    outcome = shared_get(slot)
                    if outcome is None:
                        if (
                            generalizers is not None
                            and generalizers[slot]
                            and _ancestor_failed(generalizers, slot, shared)
                        ):
                            outcome = False
                        else:
                            denominator = c0 * k0
                            for position, k1, k2 in pairs:
                                denominator -= c1[position] * k1 + c2[position] * k2
                            pairings += cost
                            outcome = (c_prime - denominator - match_exp) % modulus == 0
                            if outcome and generalizers is not None and generalizers[slot]:
                                _backfill_true(generalizers, slot, shared)
                        shared[slot] = outcome
                    if outcome:
                        matched = True
                        break
                row.append(matched)
            rows.append(row)
        return rows, pairings

    def make_fused_worklist(self, program: FusedProgram) -> "FusedWorklist":
        """Build a resident packed-column evaluator for ``program``.

        Pays off when the same (plan, population) pair is evaluated
        repeatedly -- the matching engine keeps the worklist across passes
        and refreshes only the users whose ciphertexts changed.  Requires
        ``program.factors``; raises :class:`ValueError` without it.
        """
        return FusedWorklist(program)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FusedWorklist:
    """Resident packed-column form of a fused worklist.

    The ideal-group match test for one (token, ciphertext) pair is a linear
    combination of the ciphertext's exponents::

        x = c' - (c0*k0 - sum_p(c1[p]*k1 + c2[p]*k2)) - match_exp
        outcome = x % N == 0

    with ``N = p*q``.  Because the simulator knows the factorisation,
    ``x % N == 0  iff  x % p == 0 and x % q == 0`` (CRT), and ``x % p`` only
    depends on the inputs mod ``p``.  The worklist exploits this two ways:

    * **Pre-filter mod p.**  All per-user exponents are reduced mod ``p``
      once, at build/refresh time.  A random non-match survives the mod-``p``
      test with probability ~``1/p``, so almost every outcome is settled by
      single-word residues instead of full-width arithmetic.
    * **Packed columns.**  The reduced exponents are packed, one fixed-width
      limb per user, into big-integer *columns* (one per ciphertext
      component).  Evaluating a token against the whole population is then
      one linear combination of a handful of columns -- CPython executes it
      in ``_mul``/``_add`` over machine words, amortising all interpreter
      dispatch across users.  The limb width is sized so per-limb sums cannot
      carry into a neighbour (see ``_limb_bits``), making per-user extraction
      a byte-slice.

    The rare mod-``p`` survivors are confirmed against the full modulus with
    the exact scalar formula, so outcome rows are bit-identical to
    :meth:`GroupBackend.fused_eval` -- and the bookkeeping pass in
    :meth:`evaluate` replays the scalar control flow (shared slots, ancestor
    short-circuits, true-backfill, per-batch first-match break) over the
    vectorised outcomes, so pairing charges are bit-identical too.

    Residency: :meth:`evaluate` takes per-job ``keys`` (any hashable identity
    for a job's ciphertext, e.g. ``(user_id, sequence_number)``).  Unchanged
    keys reuse the packed columns as-is; a small fraction of changed keys is
    patched in place with limb surgery (``column += (new - old) << shift``,
    sound because limbs never borrow below zero or carry past their width);
    anything larger rebuilds.
    """

    def __init__(self, program: FusedProgram):
        if program.factors is None:
            raise ValueError("FusedWorklist needs program.factors=(p, q)")
        self._program = program
        self._modulus = program.modulus
        self._match_exp = program.match_exp
        p = int(program.factors[0])
        self._p = p
        self._match_exp_p = int(program.match_exp) % p
        # Per-limb sums are bounded by (2 + 2*pairs) * p**2 (one c' residue,
        # one c0*(p - k0) term, two p*p products per pair); 18 slack bits on
        # top of 2*p.bit_length() keep sums carry-free up to ~130k pairs.
        self._limb_bits = -(-(2 * p.bit_length() + 18) // 8) * 8
        self._limb_bytes = self._limb_bits // 8
        # Deduplicate plan entries: one column-combination per distinct slot.
        # _slots holds mod-p token residues for the packed pre-filter;
        # _slots_full keeps the native-precision originals for confirmation.
        slots: dict[int, tuple[int, tuple[tuple[int, int, int], ...]]] = {}
        slots_full: dict[int, tuple[Any, tuple]] = {}
        for batch in program.batches:
            for slot, k0, pairs, _cost in batch:
                if slot not in slots:
                    slots[slot] = (
                        int(k0) % p,
                        tuple((pos, int(k1) % p, int(k2) % p) for pos, k1, k2 in pairs),
                    )
                    slots_full[slot] = (k0, pairs)
        self._slots = slots
        self._slots_full = slots_full
        self._positions = sorted(
            {pos for _, pairs in slots.values() for pos, _k1, _k2 in pairs}
        )
        self._position_index = {pos: i for i, pos in enumerate(self._positions)}
        self._keys: Optional[list] = None
        self._rows_p: list[list[int]] = []  # per job, layout mirrors _columns
        self._columns: list[int] = []
        # Residue vectors are pure functions of the packed columns, so they
        # stay valid until a refresh touches the columns; static populations
        # then pay only the bookkeeping pass on repeat evaluations.
        self._vectors: dict[int, list[bool]] = {}
        #: Passes served from already-packed columns (no full rebuild); the
        #: group folds this into its ``precomp_hits`` observability counter.
        self.column_hits = 0

    # -- packing -------------------------------------------------------
    def _reduce_row(self, job: tuple) -> list[int]:
        """One job's packed layout: [(c'-ME) % p, c0 % p, c1[pos].., c2[pos]..]."""
        c_prime, c0, c1, c2 = job[0], job[1], job[2], job[3]
        p = self._p
        row = [(int(c_prime) - self._match_exp_p) % p, int(c0) % p]
        row.extend(int(c1[pos]) % p for pos in self._positions)
        row.extend(int(c2[pos]) % p for pos in self._positions)
        return row

    def _build(self, jobs: Sequence[tuple], keys: list) -> None:
        rows = [self._reduce_row(job) for job in jobs]
        nbytes = self._limb_bytes
        ncols = 2 + 2 * len(self._positions)
        self._columns = [
            int.from_bytes(
                b"".join(row[col].to_bytes(nbytes, "little") for row in rows), "little"
            )
            for col in range(ncols)
        ]
        self._rows_p = rows
        self._keys = keys
        self._vectors.clear()

    def _refresh(self, jobs: Sequence[tuple], keys: list) -> None:
        if self._keys == keys:
            self.column_hits += 1
            return
        if self._keys is not None and len(self._keys) == len(keys):
            changed = [i for i, (a, b) in enumerate(zip(keys, self._keys)) if a != b]
            if len(changed) * 8 <= len(keys):  # <= 1/8 churn: patch in place
                columns = self._columns
                for i in changed:
                    new_row = self._reduce_row(jobs[i])
                    old_row = self._rows_p[i]
                    shift = i * self._limb_bits
                    for col, (new_v, old_v) in enumerate(zip(new_row, old_row)):
                        if new_v != old_v:
                            columns[col] += (new_v - old_v) << shift
                    self._rows_p[i] = new_row
                self._keys = keys
                self._vectors.clear()
                self.column_hits += 1
                return
        self._build(jobs, keys)

    # -- evaluation ----------------------------------------------------
    def _residue_vector(self, slot: int) -> list[bool]:
        """``x % p == 0`` for every packed job, via one column combination.

        Cached until the next refresh invalidates the columns.
        """
        cached = self._vectors.get(slot)
        if cached is not None:
            return cached
        k0_p, pairs = self._slots[slot]
        p = self._p
        columns = self._columns
        pos_index = self._position_index
        npos = len(self._positions)
        # All terms positive: -c0*k0 is folded as +c0*(p - k0) mod p.
        acc = columns[0] + columns[1] * (p - k0_p)
        for pos, k1_p, k2_p in pairs:
            i = pos_index[pos]
            acc = acc + columns[2 + i] * k1_p + columns[2 + npos + i] * k2_p
        nbytes = self._limb_bytes
        njobs = len(self._keys)
        raw = acc.to_bytes(njobs * nbytes + nbytes, "little")
        from_bytes = int.from_bytes
        vector = [
            from_bytes(raw[offset : offset + nbytes], "little") % p == 0
            for offset in range(0, njobs * nbytes, nbytes)
        ]
        self._vectors[slot] = vector
        return vector

    def _confirm(self, slot: int, job: tuple) -> bool:
        """Full-modulus check for a mod-p survivor: the exact scalar formula."""
        c_prime, c0, c1, c2 = job[0], job[1], job[2], job[3]
        k0, pairs = self._slots_full[slot]
        denominator = c0 * k0
        for position, k1, k2 in pairs:
            denominator -= c1[position] * k1 + c2[position] * k2
        return (c_prime - denominator - self._match_exp) % self._modulus == 0

    def evaluate(
        self, jobs: Sequence[tuple], keys: Sequence
    ) -> tuple[list[list[bool]], int]:
        """Drop-in for :meth:`GroupBackend.fused_eval`, same jobs and returns.

        ``keys`` carries one hashable identity per job (aligned with
        ``jobs``) used to decide column reuse vs. surgery vs. rebuild.
        """
        if keys is None:
            raise ValueError("a packed worklist needs per-job keys")
        keys = list(keys)
        if len(keys) != len(jobs):
            raise ValueError("evaluate needs one key per job")
        self._refresh(jobs, keys)
        program = self._program
        batches = program.batches
        generalizers = program.generalizers
        residue_vector = self._residue_vector
        vectors_get = self._vectors.get  # bound once: hit per fresh entry
        confirm = self._confirm
        pairings = 0
        rows: list[list[bool]] = []
        for j, job in enumerate(jobs):
            needed = job[4]
            if not needed:
                rows.append([])
                continue
            shared: dict[int, bool] = {}
            shared_get = shared.get
            row: list[bool] = []
            for index in needed:
                matched = False
                for slot, _k0, _pairs, cost in batches[index]:
                    outcome = shared_get(slot)
                    if outcome is None:
                        if (
                            generalizers is not None
                            and generalizers[slot]
                            and _ancestor_failed(generalizers, slot, shared)
                        ):
                            outcome = False
                        else:
                            pairings += cost
                            vector = vectors_get(slot)
                            if vector is None:
                                vector = residue_vector(slot)
                            outcome = vector[j] and confirm(slot, job)
                            if outcome and generalizers is not None and generalizers[slot]:
                                _backfill_true(generalizers, slot, shared)
                        shared[slot] = outcome
                    if outcome:
                        matched = True
                        break
                row.append(matched)
            rows.append(row)
        return rows, pairings


def _ancestor_failed(
    generalizers: Sequence[tuple[int, ...]], slot: int, shared: dict[int, bool]
) -> bool:
    """A cached False at any (transitive) generaliser settles ``slot`` as False.

    Identical walk to the scalar planned evaluator's ``ancestor_failed``:
    recursion through the (possibly transitively reduced) edges, stopping at
    cached-True branches, so fused and scalar paths agree on which entries
    are answered without pairings.
    """
    stack = list(generalizers[slot])
    seen: set[int] = set()
    while stack:
        g = stack.pop()
        if g in seen:
            continue
        seen.add(g)
        outcome = shared.get(g)
        if outcome is False:
            return True
        if outcome is None:
            stack.extend(generalizers[g])
    return False


def _backfill_true(
    generalizers: Sequence[tuple[int, ...]], slot: int, shared: dict[int, bool]
) -> None:
    """A fresh True at ``slot`` answers every pattern that subsumes it."""
    stack = list(generalizers[slot])
    seen: set[int] = set()
    while stack:
        g = stack.pop()
        if g in seen:
            continue
        seen.add(g)
        if shared.get(g) is None:
            shared[g] = True
        stack.extend(generalizers[g])
