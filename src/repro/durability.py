"""Crash-safe file primitives shared by the persistence layers.

Every durable artifact the provider writes -- ciphertext-store snapshots
(:meth:`repro.protocol.store.CiphertextStore.save`), session snapshots
(:meth:`repro.service.service.AlertService.snapshot`), shard spool files and
the write-ahead request journal -- goes through the two primitives here:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` publish a file with
  the classic tmp-file + ``fsync`` + :func:`os.replace` dance, so a reader
  (or a process restarted after a crash) only ever observes either the
  previous complete file or the new complete file, never a torn prefix;
* :func:`checksum_bytes` / :func:`verify_checksum` give every payload a CRC32
  so a file corrupted *after* a successful write (bit rot, a buggy tool, an
  injected fault) is detected at load time instead of being silently parsed
  into wrong state.

CRC32 is an integrity check against accidents, not an authenticity check
against adversaries -- the threat model here is crashes and corruption, the
same one the rest of the resilience layer (:mod:`repro.service.resilience`)
handles.
"""

from __future__ import annotations

import os
import pathlib
import zlib
from typing import Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "checksum_bytes",
    "checksum_text",
    "verify_checksum",
]

PathLike = Union[str, pathlib.Path]


def checksum_bytes(payload: bytes) -> int:
    """CRC32 of a byte payload (unsigned, stable across platforms)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def checksum_text(text: str) -> int:
    """CRC32 of a text payload (UTF-8 encoded)."""
    return checksum_bytes(text.encode("utf-8"))


def verify_checksum(payload: bytes, expected: int) -> bool:
    """True when ``payload`` hashes to ``expected`` (see :func:`checksum_bytes`)."""
    return checksum_bytes(payload) == (expected & 0xFFFFFFFF)


def atomic_write_bytes(path: PathLike, payload: bytes, fsync: bool = True) -> None:
    """Write ``payload`` to ``path`` so a crash never leaves a torn file.

    The payload lands in a same-directory temp file first (``os.replace`` is
    only atomic within one filesystem), is flushed and optionally fsynced,
    and is then renamed over the target.  A crash before the rename leaves
    the previous file untouched; a crash after it leaves the new complete
    file.  The temp file is removed on any failure, so interrupted writes do
    not litter the directory.
    """
    target = pathlib.Path(path)
    tmp_path = target.with_name(target.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str, fsync: bool = True) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
