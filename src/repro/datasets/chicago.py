"""Synthetic Chicago-crime-like dataset (stand-in for Section 7.1's real data).

The paper uses reported incidents of crime in Chicago during 2015 from the
Police Department's CLEAR system, restricted to four categories: homicide,
criminal sexual assault, sex offense and kidnapping.  A 32x32 grid is overlaid
on the city and a logistic-regression model trained on January-November
produces per-cell alert likelihoods.

The original export is not redistributable here, so this module generates a
synthetic dataset with the same statistical structure:

* incidents are drawn from a mixture of spatial hot spots (plus a uniform
  background component) inside the Chicago bounding box, giving the skewed
  per-cell counts that make probability-aware encoding worthwhile;
* yearly volumes per category follow the same order of magnitude as the real
  2015 figures;
* monthly counts follow a mild summer-peaking seasonality, as observed in the
  real data.

Everything downstream (Fig. 8 statistics, the Fig. 9 evaluation) consumes only
per-cell / per-month counts, so this generator exercises the exact same code
paths as the real export would.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.grid.geometry import BoundingBox, Point
from repro.grid.grid import Grid

__all__ = [
    "CHICAGO_BOUNDING_BOX",
    "CRIME_CATEGORIES",
    "CATEGORY_ANNUAL_VOLUME",
    "MONTHLY_SEASONALITY",
    "CrimeIncident",
    "ChicagoCrimeDataset",
    "generate_chicago_crime_dataset",
]

#: Approximate bounding box of the city of Chicago (lon/lat degrees).
CHICAGO_BOUNDING_BOX = BoundingBox(min_x=-87.94, min_y=41.64, max_x=-87.52, max_y=42.02)

#: The four categories the paper keeps from the CLEAR export.
CRIME_CATEGORIES: tuple[str, ...] = (
    "HOMICIDE",
    "CRIMINAL SEXUAL ASSAULT",
    "SEX OFFENSE",
    "KIDNAPPING",
)

#: Rough annual volume per category, same order of magnitude as Chicago 2015.
CATEGORY_ANNUAL_VOLUME: dict[str, int] = {
    "HOMICIDE": 480,
    "CRIMINAL SEXUAL ASSAULT": 1_430,
    "SEX OFFENSE": 1_000,
    "KIDNAPPING": 205,
}

#: Relative monthly weights (Jan..Dec) -- mild summer peak.
MONTHLY_SEASONALITY: tuple[float, ...] = (
    0.072, 0.066, 0.078, 0.082, 0.088, 0.094, 0.098, 0.096, 0.088, 0.084, 0.078, 0.076,
)


@dataclass(frozen=True)
class CrimeIncident:
    """One reported incident: category, month (1..12) and location."""

    category: str
    month: int
    location: Point

    def __post_init__(self) -> None:
        if self.category not in CRIME_CATEGORIES:
            raise ValueError(f"unknown crime category: {self.category!r}")
        if not 1 <= self.month <= 12:
            raise ValueError(f"month must be in 1..12, got {self.month}")


@dataclass
class ChicagoCrimeDataset:
    """A year of synthetic incidents plus the helpers the experiments need."""

    incidents: list[CrimeIncident]
    bounding_box: BoundingBox = CHICAGO_BOUNDING_BOX

    def __len__(self) -> int:
        return len(self.incidents)

    # ------------------------------------------------------------------
    # Statistics (Fig. 8)
    # ------------------------------------------------------------------
    def category_counts(self) -> dict[str, int]:
        """Total incidents per category over the year (the Fig. 8 table)."""
        counts = {category: 0 for category in CRIME_CATEGORIES}
        for incident in self.incidents:
            counts[incident.category] += 1
        return counts

    def monthly_counts(self) -> dict[str, list[int]]:
        """Per-category monthly counts (Jan..Dec)."""
        counts = {category: [0] * 12 for category in CRIME_CATEGORIES}
        for incident in self.incidents:
            counts[incident.category][incident.month - 1] += 1
        return counts

    def monthly_totals(self) -> list[int]:
        """All-category monthly counts (Jan..Dec)."""
        totals = [0] * 12
        for incident in self.incidents:
            totals[incident.month - 1] += 1
        return totals

    # ------------------------------------------------------------------
    # Gridded views (model input)
    # ------------------------------------------------------------------
    def cell_month_matrix(self, grid: Grid) -> np.ndarray:
        """Incident counts per (cell, month): the logistic-regression input.

        Shape is ``(grid.n_cells, 12)``; entry ``[i, m]`` counts incidents of
        any category in cell ``i`` during month ``m + 1``.
        """
        matrix = np.zeros((grid.n_cells, 12), dtype=float)
        for incident in self.incidents:
            cell = grid.cell_at(incident.location)
            matrix[cell.cell_id, incident.month - 1] += 1
        return matrix

    def cell_counts(self, grid: Grid) -> list[int]:
        """Total incidents per cell over the year."""
        return [int(c) for c in self.cell_month_matrix(grid).sum(axis=1)]


@dataclass(frozen=True)
class _HotSpot:
    """One spatial hot spot of the mixture: a 2-D Gaussian in lon/lat degrees."""

    center: Point
    sigma_degrees: float
    weight: float


def _default_hot_spots(rng: random.Random, bounding_box: BoundingBox, count: int) -> list[_HotSpot]:
    """Draw a reproducible set of hot spots inside the bounding box."""
    spots = []
    for _ in range(count):
        center = Point(
            rng.uniform(bounding_box.min_x + 0.05, bounding_box.max_x - 0.05),
            rng.uniform(bounding_box.min_y + 0.05, bounding_box.max_y - 0.05),
        )
        sigma = rng.uniform(0.008, 0.03)  # ~0.9 km to ~3 km
        weight = rng.uniform(0.5, 2.0)
        spots.append(_HotSpot(center=center, sigma_degrees=sigma, weight=weight))
    return spots


def generate_chicago_crime_dataset(
    seed: int = 2015,
    hot_spots: int = 12,
    background_fraction: float = 0.15,
    volume_scale: float = 1.0,
    bounding_box: BoundingBox = CHICAGO_BOUNDING_BOX,
) -> ChicagoCrimeDataset:
    """Generate a year of synthetic incidents.

    Parameters
    ----------
    seed:
        RNG seed; the default regenerates the canonical dataset used by the
        benchmark harness.
    hot_spots:
        Number of spatial hot spots in the mixture.
    background_fraction:
        Fraction of incidents drawn uniformly over the city instead of from a
        hot spot (keeps low-probability cells non-empty, as in real data).
    volume_scale:
        Multiplier on the per-category annual volumes (use < 1 for fast tests).
    bounding_box:
        Spatial extent; defaults to the Chicago box.
    """
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must be in [0, 1]")
    if volume_scale <= 0:
        raise ValueError("volume_scale must be positive")
    rng = random.Random(seed)
    spots = _default_hot_spots(rng, bounding_box, hot_spots)
    spot_weights = [s.weight for s in spots]

    incidents: list[CrimeIncident] = []
    for category in CRIME_CATEGORIES:
        annual = max(1, round(CATEGORY_ANNUAL_VOLUME[category] * volume_scale))
        months = rng.choices(range(1, 13), weights=MONTHLY_SEASONALITY, k=annual)
        for month in months:
            if rng.random() < background_fraction:
                location = Point(
                    rng.uniform(bounding_box.min_x, bounding_box.max_x),
                    rng.uniform(bounding_box.min_y, bounding_box.max_y),
                )
            else:
                spot = rng.choices(spots, weights=spot_weights, k=1)[0]
                location = Point(
                    rng.gauss(spot.center.x, spot.sigma_degrees),
                    rng.gauss(spot.center.y, spot.sigma_degrees),
                )
                location = bounding_box.clamp(location)
            incidents.append(CrimeIncident(category=category, month=month, location=location))

    rng.shuffle(incidents)
    return ChicagoCrimeDataset(incidents=incidents, bounding_box=bounding_box)
