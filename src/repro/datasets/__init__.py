"""Workload datasets for the evaluation.

* :mod:`repro.datasets.chicago` -- a synthetic stand-in for the Chicago Crime
  2015 dataset used in Section 7.1 (hot-spot mixture over the Chicago bounding
  box, four crime categories, monthly seasonality).  See DESIGN.md,
  substitution 2.
* :mod:`repro.datasets.synthetic` -- convenience constructors bundling the
  sigmoid probability model with a grid, matching the synthetic configurations
  of Section 7.2.
"""

from repro.datasets.chicago import (
    CHICAGO_BOUNDING_BOX,
    CRIME_CATEGORIES,
    ChicagoCrimeDataset,
    CrimeIncident,
    generate_chicago_crime_dataset,
)
from repro.datasets.synthetic import SyntheticScenario, make_synthetic_scenario

__all__ = [
    "CHICAGO_BOUNDING_BOX",
    "CRIME_CATEGORIES",
    "ChicagoCrimeDataset",
    "CrimeIncident",
    "generate_chicago_crime_dataset",
    "SyntheticScenario",
    "make_synthetic_scenario",
]
