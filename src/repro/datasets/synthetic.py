"""Bundled synthetic scenarios matching the configurations of Section 7.2.

A *scenario* couples a grid, a per-cell alert-likelihood vector and a seeded
workload generator, so that experiments, examples and benchmarks can request
"the a=0.99, b=100, 32x32 configuration" in one call and obtain exactly the
same inputs every time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.grid.geometry import BoundingBox
from repro.grid.grid import Grid
from repro.grid.workloads import WorkloadGenerator
from repro.probability.sigmoid import SigmoidProbabilityModel

__all__ = ["SyntheticScenario", "make_synthetic_scenario"]


@dataclass
class SyntheticScenario:
    """A reproducible synthetic experiment configuration."""

    name: str
    grid: Grid
    probabilities: list[float]
    workloads: WorkloadGenerator
    sigmoid_a: float
    sigmoid_b: float
    seed: int

    @property
    def n_cells(self) -> int:
        """Number of grid cells."""
        return self.grid.n_cells

    def describe(self) -> str:
        """One-line summary used in benchmark reports."""
        return (
            f"{self.name}: {self.grid.rows}x{self.grid.cols} grid, "
            f"sigmoid(a={self.sigmoid_a:g}, b={self.sigmoid_b:g}), seed={self.seed}"
        )


def make_synthetic_scenario(
    rows: int = 32,
    cols: int = 32,
    sigmoid_a: float = 0.95,
    sigmoid_b: float = 20.0,
    seed: int = 42,
    extent_meters: float = 3200.0,
    name: Optional[str] = None,
) -> SyntheticScenario:
    """Create the standard synthetic scenario used throughout the evaluation.

    Defaults reproduce the configuration of Figs. 7, 12 and 13 (a=0.95, b=20,
    32x32 grid); pass other ``sigmoid_a`` / ``sigmoid_b`` values for the
    Fig. 10 sweep.  The planar domain is ``extent_meters`` per side so that a
    32x32 grid has 100 m cells, making the paper's radii (20 m .. 600 m)
    meaningful.
    """
    if extent_meters <= 0:
        raise ValueError("extent_meters must be positive")
    grid = Grid(rows=rows, cols=cols, bounding_box=BoundingBox(0.0, 0.0, extent_meters, extent_meters))
    model = SigmoidProbabilityModel(a=sigmoid_a, b=sigmoid_b, seed=seed)
    probabilities = model.cell_probabilities(grid.n_cells)
    workloads = WorkloadGenerator(grid, probabilities, rng=random.Random(seed + 1))
    return SyntheticScenario(
        name=name or f"synthetic-{rows}x{cols}-a{sigmoid_a:g}-b{sigmoid_b:g}",
        grid=grid,
        probabilities=probabilities,
        workloads=workloads,
        sigmoid_a=sigmoid_a,
        sigmoid_b=sigmoid_b,
        seed=seed,
    )
