"""The service provider's matching engine: planned, batched HVE evaluation.

The paper's cost model charges the service provider ``1 + 2k`` pairings per
(ciphertext, token) evaluation; everything else it does is bookkeeping.  The
seed implementation nevertheless paid real overheads around every pairing:
token lists were rebuilt per user, ``non_star_positions`` tuples were
recomputed per query and every group operation allocated a fresh element.
This module centralises the hot path behind one subsystem so those costs are
paid once per *alert batch*, not once per (user, token):

* :class:`TokenPlan` -- built once per batch of alerts.  Patterns are
  deduplicated across zones/batches (two alerts covering overlapping areas
  often minimize to shared patterns), tokens are ordered cheapest-first
  (fewest non-star bits) so short-circuiting tends to hit minimal-pairing
  tokens early, and each entry carries the token's cached
  ``non_star_positions``.
* :class:`MatchingEngine` -- the single matching path used by
  :class:`~repro.protocol.entities.ServiceProvider`,
  :class:`~repro.protocol.store.BatchMatcher` and (through them) the alert
  system and pipeline.  Strategies: ``"naive"`` replicates the seed's
  element-wise evaluation exactly (parity/regression testing), ``"planned"``
  evaluates through the plan with the fused exponent-arithmetic path
  (:meth:`~repro.crypto.hve.HVE.matches_via_plan`).  Both record identical
  :class:`~repro.crypto.counting.PairingCounter` totals for the same token
  order -- the paper's metric is preserved bit-exactly.
* **Chunked multi-worker matching** -- the candidate list is split into
  chunks handed to a ``concurrent.futures`` thread pool (off by default,
  ``workers=N``).  Chunk results are concatenated in order, so output is
  deterministic regardless of worker count.
* **Incremental mode** -- for standing alerts that are re-evaluated
  periodically, the engine remembers each user's (sequence number, outcome)
  per alert and re-matches only users whose sequence number changed; an
  unchanged ciphertext can never change its match outcome, so notifications
  are identical to a full re-evaluation at a fraction of the pairings.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.crypto.hve import HVE, HVECiphertext, HVEToken
from repro.protocol.messages import Notification, TokenBatch

__all__ = [
    "MATCHING_STRATEGIES",
    "TOKEN_ORDERS",
    "MatchCandidate",
    "MatchingOptions",
    "PlannedToken",
    "TokenPlan",
    "MatchingEngine",
]

#: Recognised values of :attr:`MatchingOptions.strategy`.
MATCHING_STRATEGIES = ("naive", "planned")

#: Recognised values of :attr:`MatchingOptions.order`.
TOKEN_ORDERS = ("declared", "cheapest")


@dataclass(frozen=True)
class MatchCandidate:
    """One stored ciphertext to be matched, plus the metadata the engine needs.

    ``sequence_number`` identifies the report revision; incremental matching
    uses it to detect users whose ciphertext is unchanged since the previous
    evaluation of a standing alert.
    """

    user_id: str
    ciphertext: HVECiphertext
    sequence_number: int = 0


@dataclass(frozen=True)
class MatchingOptions:
    """Tunables of a :class:`MatchingEngine`.

    Parameters
    ----------
    strategy:
        ``"planned"`` (default) evaluates through a :class:`TokenPlan` with
        the fused exponent-arithmetic path; ``"naive"`` replicates the seed's
        element-wise evaluation for parity testing.
    order:
        Token evaluation order within each alert: ``"cheapest"`` (default)
        sorts by pairing cost so short-circuiting saves the most,
        ``"declared"`` keeps the order tokens were issued in (required when
        comparing pairing counts against the naive path).
    dedupe:
        Evaluate each distinct pattern at most once per ciphertext, sharing
        the outcome across alerts that contain the same pattern.
    workers:
        Worker threads for chunked matching over the candidate list.  ``1``
        (default) runs inline; values above 1 enable the thread pool.
    chunk_size:
        Candidates per worker chunk.  ``None`` (default) splits the candidate
        list evenly across the workers so every requested worker gets a chunk
        whatever the store size; set explicitly for finer-grained chunks
        (better load balancing when per-candidate cost is skewed).
    incremental:
        Remember per-alert outcomes keyed by (user, sequence number) and skip
        users whose sequence number is unchanged on re-evaluation.
    """

    strategy: str = "planned"
    order: str = "cheapest"
    dedupe: bool = True
    workers: int = 1
    chunk_size: Optional[int] = None
    incremental: bool = False

    def __post_init__(self) -> None:
        if self.strategy not in MATCHING_STRATEGIES:
            raise ValueError(f"unknown matching strategy {self.strategy!r}; expected one of {MATCHING_STRATEGIES}")
        if self.order not in TOKEN_ORDERS:
            raise ValueError(f"unknown token order {self.order!r}; expected one of {TOKEN_ORDERS}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1 (or None to split evenly across workers)")


@dataclass(frozen=True)
class PlannedToken:
    """One token of a :class:`TokenPlan`, with its precomputed evaluation facts.

    ``slot`` indexes the plan's unique-pattern table: entries of different
    alerts that share a pattern share a slot, which is what lets the engine
    reuse one query outcome across alerts.
    """

    token: HVEToken
    positions: tuple[int, ...]
    cost: int
    slot: int


class TokenPlan:
    """An evaluation plan for a batch of alerts, built once per declaration.

    Parameters
    ----------
    batches:
        The token batches (one per alert) to plan.
    order:
        ``"cheapest"`` or ``"declared"``; see :class:`MatchingOptions`.
    dedupe:
        Share slots between equal patterns across alerts; see
        :class:`MatchingOptions`.
    """

    def __init__(self, batches: Sequence[TokenBatch], order: str = "cheapest", dedupe: bool = True):
        if order not in TOKEN_ORDERS:
            raise ValueError(f"unknown token order {order!r}; expected one of {TOKEN_ORDERS}")
        batches = tuple(batches)
        if not batches:
            raise ValueError("a token plan needs at least one batch")
        widths = {token.width for batch in batches for token in batch.tokens}
        if len(widths) > 1:
            raise ValueError(f"all tokens in a plan must share one width, found {sorted(widths)}")

        self.order = order
        self.dedupe = dedupe
        slots: dict[str, int] = {}
        running = 0
        entries_by_alert: list[tuple[str, tuple[PlannedToken, ...]]] = []
        for batch in batches:
            entries = []
            for token in batch.tokens:
                unique_slot = slots.setdefault(token.pattern, len(slots))
                slot = unique_slot if dedupe else running
                running += 1
                entries.append(
                    PlannedToken(
                        token=token,
                        positions=token.non_star_positions,
                        cost=token.pairing_cost,
                        slot=slot,
                    )
                )
            if order == "cheapest":
                entries.sort(key=lambda entry: entry.cost)
            entries_by_alert.append((batch.alert_id, tuple(entries)))
        self._entries_by_alert = tuple(entries_by_alert)
        self.total_tokens = running
        self.unique_patterns = len(slots)

    @property
    def alert_ids(self) -> tuple[str, ...]:
        """The alert ids covered by this plan, in declaration order."""
        return tuple(alert_id for alert_id, _ in self._entries_by_alert)

    @property
    def entries_by_alert(self) -> tuple[tuple[str, tuple[PlannedToken, ...]], ...]:
        """Per-alert planned tokens, in evaluation order."""
        return self._entries_by_alert

    @property
    def duplicate_tokens(self) -> int:
        """Tokens whose pattern also appears elsewhere in the plan."""
        return self.total_tokens - self.unique_patterns

    @property
    def pairing_cost_per_ciphertext(self) -> int:
        """Worst-case pairings (no short-circuit) to evaluate one ciphertext.

        With deduplication each distinct pattern is charged once; without it
        every token occurrence is charged, matching the naive path's bound.
        """
        if self.dedupe:
            seen: set[int] = set()
            cost = 0
            for _, entries in self._entries_by_alert:
                for entry in entries:
                    if entry.slot not in seen:
                        seen.add(entry.slot)
                        cost += entry.cost
            return cost
        return sum(entry.cost for _, entries in self._entries_by_alert for entry in entries)


class MatchingEngine:
    """The single matching path of the service provider.

    Parameters
    ----------
    hve:
        The HVE instance shared with the rest of the deployment (the engine
        only ever calls query/match operations -- it never sees key material).
    options:
        Strategy and execution tunables; defaults to the planned strategy,
        cheapest-first order, deduplication on, a single worker and no
        incremental state.
    """

    def __init__(self, hve: HVE, options: Optional[MatchingOptions] = None):
        self.hve = hve
        self.options = options if options is not None else MatchingOptions()
        # alert_id -> (token signature, user_id -> (sequence_number, matched)).
        # The signature is the alert's ordered pattern tuple: a standing alert
        # re-declared with a different token set must not serve outcomes
        # computed for the old zone, so a signature change drops its state.
        self._alert_state: dict[str, tuple[tuple[str, ...], dict[str, tuple[int, bool]]]] = {}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, batches: Sequence[TokenBatch]) -> TokenPlan:
        """Build the :class:`TokenPlan` this engine would evaluate for ``batches``."""
        return TokenPlan(batches, order=self.options.order, dedupe=self.options.dedupe)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(
        self,
        batches: Sequence[TokenBatch],
        candidates: Iterable[MatchCandidate],
        descriptions: Optional[Mapping[str, str]] = None,
    ) -> list[Notification]:
        """Match every alert batch against every candidate ciphertext.

        Semantics are identical across strategies: per candidate, alerts are
        evaluated in declaration order and each alert short-circuits on its
        first matching token; a user can be notified for several distinct
        alerts but only once per alert.  Notifications come back in
        (candidate, alert) order.
        """
        batches = list(batches)
        candidates = list(candidates)
        if not batches or not candidates:
            return []
        descriptions = descriptions or {}

        if self.options.strategy == "planned":
            evaluate = self._planned_evaluator(self.plan(batches))
        else:
            evaluate = self._naive_evaluator([list(batch.tokens) for batch in batches])
        outcomes = self._evaluate_all(batches, candidates, evaluate)

        if self.options.incremental:
            outcome_maps = [self._alert_state[batch.alert_id][1] for batch in batches]
        notifications: list[Notification] = []
        for candidate, per_batch in zip(candidates, outcomes):
            for index, (batch, matched) in enumerate(zip(batches, per_batch)):
                if self.options.incremental:
                    outcome_maps[index][candidate.user_id] = (candidate.sequence_number, matched)
                if matched:
                    notifications.append(
                        Notification(
                            user_id=candidate.user_id,
                            alert_id=batch.alert_id,
                            description=descriptions.get(batch.alert_id, ""),
                        )
                    )
        return notifications

    def match_store(
        self,
        batches: Sequence[TokenBatch],
        store,
        now: float,
        descriptions: Optional[Mapping[str, str]] = None,
    ) -> list[Notification]:
        """Match alert batches against the fresh reports of a ciphertext store."""
        candidates = [
            MatchCandidate(
                user_id=report.user_id,
                ciphertext=report.ciphertext,
                sequence_number=report.sequence_number,
            )
            for report in store.fresh_reports(now)
        ]
        return self.match(batches, candidates, descriptions=descriptions)

    # ------------------------------------------------------------------
    # Incremental state
    # ------------------------------------------------------------------
    def standing_alerts(self) -> list[str]:
        """Alert ids with remembered incremental outcomes."""
        return sorted(self._alert_state)

    def forget_alert(self, alert_id: str) -> None:
        """Drop the incremental state of one standing alert (no-op if absent)."""
        self._alert_state.pop(alert_id, None)

    def reset_state(self) -> None:
        """Drop all incremental state."""
        self._alert_state.clear()

    # ------------------------------------------------------------------
    # Evaluation internals
    # ------------------------------------------------------------------
    def _naive_evaluator(
        self, token_lists: Sequence[Sequence[HVEToken]]
    ) -> Callable[[HVECiphertext, int, dict[int, bool]], bool]:
        """Element-wise evaluation, exactly the seed's per-(user, token) path."""
        hve = self.hve

        def evaluate(ciphertext: HVECiphertext, batch_index: int, shared: dict[int, bool]) -> bool:
            return hve.matches_any(ciphertext, token_lists[batch_index])

        return evaluate

    def _planned_evaluator(self, plan: TokenPlan) -> Callable[[HVECiphertext, int, dict[int, bool]], bool]:
        """Plan-driven evaluation through the fused exponent-arithmetic path.

        ``shared`` is the per-candidate slot cache: when deduplication is on,
        alerts sharing a pattern resolve from the cache instead of paying the
        pairings again.
        """
        hve = self.hve
        entries_for_batch = tuple(entries for _, entries in plan.entries_by_alert)

        def evaluate(ciphertext: HVECiphertext, batch_index: int, shared: dict[int, bool]) -> bool:
            for entry in entries_for_batch[batch_index]:
                outcome = shared.get(entry.slot)
                if outcome is None:
                    outcome = hve.matches_via_plan(ciphertext, entry.token, entry.positions)
                    shared[entry.slot] = outcome
                if outcome:
                    return True
            return False

        return evaluate

    def _evaluate_all(
        self,
        batches: Sequence[TokenBatch],
        candidates: Sequence[MatchCandidate],
        evaluate: Callable[[HVECiphertext, int, dict[int, bool]], bool],
    ) -> list[list[bool]]:
        """Per-candidate, per-batch outcomes, honoring incremental state and workers."""
        if self.options.incremental:
            cached_by_batch = []
            for batch in batches:
                signature = tuple(token.pattern for token in batch.tokens)
                state = self._alert_state.get(batch.alert_id)
                if state is None or state[0] != signature:
                    # New standing alert, or the alert was re-declared with a
                    # different token set: previous outcomes are invalid.
                    state = (signature, {})
                    self._alert_state[batch.alert_id] = state
                cached_by_batch.append(state[1])
        else:
            cached_by_batch = None
        batch_indices = range(len(batches))

        def evaluate_candidate(candidate: MatchCandidate) -> list[bool]:
            shared: dict[int, bool] = {}
            per_batch: list[bool] = []
            for index in batch_indices:
                if cached_by_batch is not None:
                    previous = cached_by_batch[index].get(candidate.user_id)
                    if previous is not None and previous[0] == candidate.sequence_number:
                        per_batch.append(previous[1])
                        continue
                per_batch.append(evaluate(candidate.ciphertext, index, shared))
            return per_batch

        workers = min(self.options.workers, len(candidates))
        if workers <= 1:
            return [evaluate_candidate(candidate) for candidate in candidates]

        chunk_size = self.options.chunk_size
        if chunk_size is None:
            chunk_size = -(-len(candidates) // workers)  # ceil: every worker gets a chunk
        chunks = [candidates[i : i + chunk_size] for i in range(0, len(candidates), chunk_size)]
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            chunk_outcomes = list(pool.map(lambda chunk: [evaluate_candidate(c) for c in chunk], chunks))
        return [outcome for chunk in chunk_outcomes for outcome in chunk]
