"""The service provider's matching engine: planned, batched HVE evaluation.

The paper's cost model charges the service provider ``1 + 2k`` pairings per
(ciphertext, token) evaluation; everything else it does is bookkeeping.  The
seed implementation nevertheless paid real overheads around every pairing:
token lists were rebuilt per user, ``non_star_positions`` tuples were
recomputed per query and every group operation allocated a fresh element.
This module centralises the hot path behind one subsystem so those costs are
paid once per *alert batch*, not once per (user, token):

* :class:`TokenPlan` -- built once per batch of alerts.  Patterns are
  deduplicated across zones/batches (two alerts covering overlapping areas
  often minimize to shared patterns), tokens are ordered cheapest-first
  (fewest non-star bits) so short-circuiting tends to hit minimal-pairing
  tokens early, and each entry carries the token's cached
  ``non_star_positions``.  On top of exact-pattern dedupe the plan knows the
  *subsumption* lattice of its patterns: a pattern is a specialisation of a
  wildcard pattern when every index it accepts is also accepted by the
  wildcard, so a cached non-match of the general pattern answers the
  specialised one for free (and a specialised match answers the general one).
* :class:`MatchingEngine` -- the single matching path used by
  :class:`~repro.protocol.entities.ServiceProvider`,
  :class:`~repro.protocol.store.BatchMatcher` and (through them) the alert
  system and pipeline.  Strategies: ``"naive"`` replicates the seed's
  element-wise evaluation exactly (parity/regression testing), ``"planned"``
  evaluates through the plan with the fused exponent-arithmetic path
  (:meth:`~repro.crypto.hve.HVE.matches_via_plan`).  Both record identical
  :class:`~repro.crypto.counting.PairingCounter` totals for the same token
  order -- the paper's metric is preserved bit-exactly.
* **Chunked multi-worker matching** -- the candidate list is split into
  chunks handed to a ``concurrent.futures`` pool (off by default,
  ``workers=N``).  Two executors are available: ``"thread"`` shares the
  parent's group (GIL-bound on the pure-Python backend, so it mostly overlaps
  allocator stalls), while ``"process"`` ships the serialized token plan to
  worker processes once, streams compact ciphertext wire forms to them (see
  :mod:`repro.crypto.serialization`) and merges the per-worker pairing totals
  back into the parent's counter bit-exactly.  Chunk results are concatenated
  in order, so output is deterministic regardless of worker count or
  executor.
* **Incremental mode** -- for standing alerts that are re-evaluated
  periodically, the engine remembers each user's (sequence number, outcome)
  per alert and re-matches only users whose sequence number changed; an
  unchanged ciphertext can never change its match outcome, so notifications
  are identical to a full re-evaluation at a fraction of the pairings.  The
  remembered state round-trips through :meth:`MatchingEngine.export_state` /
  :meth:`MatchingEngine.import_state`, which is how standing alerts survive
  provider restarts (see :meth:`repro.protocol.store.CiphertextStore.save`).
* **Shard-targeted evaluation** -- over a
  :class:`~repro.protocol.shards.ShardedCiphertextStore`, the process
  executor ships ``(shard, version)`` handles plus per-shard deltas instead
  of per-candidate ciphertext wire forms: workers keep each shard resident
  (and deserialized) between passes, so the per-call serialization term
  disappears from the scaling curve.  In incremental mode the engine
  additionally keeps a per-zone *dirty index*: each standing zone records
  the shard-version frontier it last evaluated, zones whose frontier is
  still current are skipped outright, and a pass where every zone is clean
  replays the previous notifications without touching candidates, plan or
  pools (receipts in :class:`PassStats`).
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.crypto.backends import FusedProgram
from repro.crypto.hve import HVE, STAR, HVECiphertext, HVEToken
from repro.crypto.serialization import (
    ciphertext_to_wire,
    group_to_wire,
    token_to_wire,
    wire_to_ciphertext,
    wire_to_group,
    wire_to_token,
)
from repro.protocol.messages import Notification, TokenBatch

__all__ = [
    "MATCHING_STRATEGIES",
    "TOKEN_ORDERS",
    "EXECUTORS",
    "EphemeralPools",
    "MatchCandidate",
    "MatchingOptions",
    "PassStats",
    "PlannedToken",
    "TokenPlan",
    "MatchingEngine",
    "pattern_subsumes",
]

#: Recognised values of :attr:`MatchingOptions.strategy`.
MATCHING_STRATEGIES = ("naive", "planned")

#: Recognised values of :attr:`MatchingOptions.order`.
TOKEN_ORDERS = ("declared", "cheapest")

#: Recognised values of :attr:`MatchingOptions.executor`.
EXECUTORS = ("thread", "process")


def pattern_subsumes(general: str, specific: str) -> bool:
    """True if every index accepted by ``specific`` is accepted by ``general``.

    ``general`` subsumes ``specific`` exactly when, at every position where
    ``general`` pins a concrete bit, ``specific`` pins the same bit.  A
    pattern never subsumes itself (equal patterns are the exact-dedupe case,
    handled by slot sharing).  Examples: ``1**`` subsumes ``1*0`` and ``110``;
    ``10*`` does not subsume ``1**``.
    """
    if len(general) != len(specific):
        raise ValueError("patterns must have equal width")
    if general == specific:
        return False
    return all(g == STAR or g == s for g, s in zip(general, specific))


@dataclass
class PassStats:
    """Work accounting of the engine's most recent matching pass.

    Reset at the start of every :meth:`MatchingEngine.match` /
    :meth:`~MatchingEngine.match_store` call and surfaced by the session
    service in its receipts and observer metrics, so shard shipping and zone
    skipping can be profiled without a debugger.

    ``zones_skipped`` counts standing zones whose (shard, version) frontier
    already matched every shard -- they were answered from remembered
    outcomes without planning any evaluation.  The shipping counters cover
    the shard-targeted process path: ``resident_hits`` are candidates served
    from ciphertexts already resident in worker processes (no serialization,
    no transfer), ``ciphertexts_shipped``/``bytes_shipped`` what actually
    travelled (full shard payloads plus delta upserts); on the unsharded
    process path ``ciphertexts_shipped`` counts the per-call wire forms.

    The affinity-dispatch receipts cover the PR 5 warm path:
    ``shards_acked`` shipments were acked deltas (built against the pinned
    worker's confirmed version rather than the floor) and
    ``acked_delta_bytes`` is what they put on the wire; ``affinity_hits``
    counts candidates routed to a worker that already held their shard
    resident; ``inplace_reprimes`` is 1 when a plan change was broadcast to
    the live pool instead of restarting it.
    """

    candidates: int = 0
    zones_evaluated: int = 0
    zones_skipped: int = 0
    shards_shipped: int = 0
    shards_full: int = 0
    shards_delta: int = 0
    shards_acked: int = 0
    ciphertexts_shipped: int = 0
    bytes_shipped: int = 0
    resident_hits: int = 0
    affinity_hits: int = 0
    acked_delta_bytes: int = 0
    inplace_reprimes: int = 0
    #: Resilience-layer receipts (see :mod:`repro.service.resilience`): how
    #: many failing process attempts were retried, bounded waits that expired,
    #: lanes quarantined, passes degraded to inline evaluation, and
    #: ``StaleResidentShard`` floor resets absorbed during this pass.
    retries: int = 0
    deadline_hits: int = 0
    quarantines: int = 0
    degraded_passes: int = 0
    stale_resets: int = 0
    #: Vectorized-crypto receipts: ``fused_evals`` counts backend
    #: :meth:`~repro.crypto.backends.base.GroupBackend.fused_eval` worklist
    #: calls (inline passes make one for the whole candidate list; thread and
    #: process passes one per chunk / shard worklist), ``precomp_hits`` counts
    #: exponentiations served from fixed-base precomputation tables plus
    #: per-key program-cache hits, parent- and worker-side combined.
    fused_evals: int = 0
    precomp_hits: int = 0


@dataclass(frozen=True)
class MatchCandidate:
    """One stored ciphertext to be matched, plus the metadata the engine needs.

    ``sequence_number`` identifies the report revision; incremental matching
    uses it to detect users whose ciphertext is unchanged since the previous
    evaluation of a standing alert.
    """

    user_id: str
    ciphertext: HVECiphertext
    sequence_number: int = 0


@dataclass(frozen=True)
class MatchingOptions:
    """Tunables of a :class:`MatchingEngine`.

    Parameters
    ----------
    strategy:
        ``"planned"`` (default) evaluates through a :class:`TokenPlan` with
        the fused exponent-arithmetic path; ``"naive"`` replicates the seed's
        element-wise evaluation for parity testing.
    order:
        Token evaluation order within each alert: ``"cheapest"`` (default)
        sorts by pairing cost so short-circuiting saves the most,
        ``"declared"`` keeps the order tokens were issued in (required when
        comparing pairing counts against the naive path).
    dedupe:
        Evaluate each distinct pattern at most once per ciphertext, sharing
        the outcome across alerts that contain the same pattern.
    subsume:
        Additionally propagate outcomes along the pattern-subsumption lattice:
        a non-match of a wildcard pattern is reused as the (non-)match of
        every specialisation of it, and a specialised match answers its
        generalisations.  Only effective when ``dedupe`` is on; never changes
        notifications, only saves pairings.
    workers:
        Workers for chunked matching over the candidate list.  ``1`` (default)
        runs inline; values above 1 enable the pool selected by ``executor``.
    executor:
        Pool flavour for ``workers > 1``: ``"thread"`` (default) shares the
        parent group but is GIL-bound on the pure-Python backend;
        ``"process"`` ships the plan and ciphertext wire forms to worker
        processes, so matching scales with cores at the price of
        serialization and process start-up.
    chunk_size:
        Candidates per worker chunk.  ``None`` (default) splits the candidate
        list evenly across the workers so every requested worker gets a chunk
        whatever the store size; set explicitly for finer-grained chunks
        (better load balancing when per-candidate cost is skewed).
    incremental:
        Remember per-alert outcomes keyed by (user, sequence number) and skip
        users whose sequence number is unchanged on re-evaluation.
    fused:
        Hand whole evaluation worklists to the crypto backend as one
        :class:`~repro.crypto.backends.base.FusedProgram` call instead of
        evaluating (candidate, token) pairs through per-call Python dispatch.
        Only effective with the planned strategy; notifications and
        :class:`~repro.crypto.counting.PairingCounter` totals are bit-exact
        with the scalar path (property-tested), so this is purely a
        performance switch.  ``False`` forces the scalar planned evaluator
        everywhere, including worker processes.
    fused_pack_min_jobs:
        Worklist size from which the inline fused path switches to the
        resident packed-column evaluator
        (:class:`~repro.crypto.backends.base.FusedWorklist`): ciphertext
        exponents packed into big-integer columns, evaluated per token in a
        handful of huge multiplications, refreshed incrementally as users
        move.  Below the threshold (or on worker chunks) the plain fused call
        runs -- packing has a per-worklist build cost that only amortises
        over enough users.  Bit-exact either way; parity tests force ``1`` to
        exercise the packed path on tiny worklists.
    """

    strategy: str = "planned"
    order: str = "cheapest"
    dedupe: bool = True
    subsume: bool = True
    workers: int = 1
    executor: str = "thread"
    chunk_size: Optional[int] = None
    incremental: bool = False
    fused: bool = True
    fused_pack_min_jobs: int = 64

    def __post_init__(self) -> None:
        if self.strategy not in MATCHING_STRATEGIES:
            raise ValueError(f"unknown matching strategy {self.strategy!r}; expected one of {MATCHING_STRATEGIES}")
        if self.order not in TOKEN_ORDERS:
            raise ValueError(f"unknown token order {self.order!r}; expected one of {TOKEN_ORDERS}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; expected one of {EXECUTORS}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1 (or None to split evenly across workers)")
        if self.fused_pack_min_jobs < 1:
            raise ValueError("fused_pack_min_jobs must be at least 1")


@dataclass(frozen=True)
class PlannedToken:
    """One token of a :class:`TokenPlan`, with its precomputed evaluation facts.

    ``slot`` indexes the plan's unique-pattern table: entries of different
    alerts that share a pattern share a slot, which is what lets the engine
    reuse one query outcome across alerts.
    """

    token: HVEToken
    positions: tuple[int, ...]
    cost: int
    slot: int


class TokenPlan:
    """An evaluation plan for a batch of alerts, built once per declaration.

    Parameters
    ----------
    batches:
        The token batches (one per alert) to plan.
    order:
        ``"cheapest"`` or ``"declared"``; see :class:`MatchingOptions`.
    dedupe:
        Share slots between equal patterns across alerts; see
        :class:`MatchingOptions`.
    subsume:
        Precompute, per unique pattern, which other unique patterns of the
        plan subsume it (accept a superset of indexes); evaluation then
        propagates outcomes along those edges.  Requires ``dedupe`` (silently
        off otherwise, since without slot sharing there is no cross-alert
        outcome cache to propagate through).
    reduce:
        Transitively reduce the generaliser DAG at plan time: an edge
        ``g -> s`` is dropped when ``g`` also subsumes another generaliser of
        ``s`` (subsumption is a strict partial order, so the edge is implied).
        With deeply nested zones the full closure holds O(depth) ancestors per
        pattern -- O(depth^2) edges along a nesting chain -- while the reduced
        DAG keeps only direct parents.  Evaluation walks the reduced edges
        recursively, reaching exactly the ancestors the closure lists, so
        outcomes and pairing counts are unchanged (property-tested).  Only
        meaningful when ``subsume`` is on.
    """

    def __init__(
        self,
        batches: Sequence[TokenBatch],
        order: str = "cheapest",
        dedupe: bool = True,
        subsume: bool = True,
        reduce: bool = True,
    ):
        if order not in TOKEN_ORDERS:
            raise ValueError(f"unknown token order {order!r}; expected one of {TOKEN_ORDERS}")
        batches = tuple(batches)
        if not batches:
            raise ValueError("a token plan needs at least one batch")
        widths = {token.width for batch in batches for token in batch.tokens}
        if len(widths) > 1:
            raise ValueError(f"all tokens in a plan must share one width, found {sorted(widths)}")

        self.order = order
        self.dedupe = dedupe
        self.subsume = bool(subsume and dedupe)
        slots: dict[str, int] = {}
        running = 0
        entries_by_alert: list[tuple[str, tuple[PlannedToken, ...]]] = []
        for batch in batches:
            entries = []
            for token in batch.tokens:
                unique_slot = slots.setdefault(token.pattern, len(slots))
                slot = unique_slot if dedupe else running
                running += 1
                entries.append(
                    PlannedToken(
                        token=token,
                        positions=token.non_star_positions,
                        cost=token.pairing_cost,
                        slot=slot,
                    )
                )
            if order == "cheapest":
                entries.sort(key=lambda entry: entry.cost)
            entries_by_alert.append((batch.alert_id, tuple(entries)))
        self._entries_by_alert = tuple(entries_by_alert)
        self.total_tokens = running
        self.unique_patterns = len(slots)
        self.reduced = bool(reduce and self.subsume)
        generalizers = self._compute_generalizers(slots) if self.subsume else None
        if self.reduced and generalizers is not None:
            generalizers = self._transitive_reduction(generalizers)
        self._generalizers = generalizers

    @staticmethod
    def _compute_generalizers(slots: Mapping[str, int]) -> tuple[tuple[int, ...], ...]:
        """Per unique slot, the slots whose patterns strictly subsume it."""
        patterns = sorted(slots, key=slots.__getitem__)
        generalizers: list[tuple[int, ...]] = []
        for specific in patterns:
            generalizers.append(
                tuple(
                    slots[general]
                    for general in patterns
                    if pattern_subsumes(general, specific)
                )
            )
        return tuple(generalizers)

    @staticmethod
    def _transitive_reduction(generalizers: Sequence[tuple[int, ...]]) -> tuple[tuple[int, ...], ...]:
        """Keep only the direct generalisers of each slot.

        ``generalizers`` holds, per slot, the *full* ancestor set under
        subsumption (the relation is transitive, so ancestor sets are
        transitively closed).  An ancestor ``g`` of ``s`` is redundant exactly
        when it is also an ancestor of another ancestor ``h`` of ``s`` --
        outcome propagation then reaches ``g`` through ``h``.
        """
        ancestor_sets = [set(gens) for gens in generalizers]
        return tuple(
            tuple(
                g
                for g in gens
                if not any(g in ancestor_sets[h] for h in gens if h != g)
            )
            for gens in generalizers
        )

    @property
    def alert_ids(self) -> tuple[str, ...]:
        """The alert ids covered by this plan, in declaration order."""
        return tuple(alert_id for alert_id, _ in self._entries_by_alert)

    @property
    def entries_by_alert(self) -> tuple[tuple[str, tuple[PlannedToken, ...]], ...]:
        """Per-alert planned tokens, in evaluation order."""
        return self._entries_by_alert

    @property
    def generalizers(self) -> Optional[tuple[tuple[int, ...], ...]]:
        """Per-slot subsuming slots (``None`` when subsumption is off).

        With ``reduce`` (the default) these are the *direct* generalisers
        only; the full ancestor set is reachable by walking the edges
        transitively, which is exactly what evaluation does.
        """
        return self._generalizers

    @property
    def generalizer_edges(self) -> int:
        """Total subsumption edges the plan stores (0 when subsumption is off)."""
        if self._generalizers is None:
            return 0
        return sum(len(gens) for gens in self._generalizers)

    @property
    def duplicate_tokens(self) -> int:
        """Tokens whose pattern also appears elsewhere in the plan."""
        return self.total_tokens - self.unique_patterns

    @property
    def subsumable_patterns(self) -> int:
        """Unique patterns with at least one generaliser in the plan.

        Each such pattern can potentially be answered without pairings: a
        cached non-match of any of its generalisers settles it.
        """
        if self._generalizers is None:
            return 0
        return sum(1 for gens in self._generalizers if gens)

    @property
    def pairing_cost_per_ciphertext(self) -> int:
        """Worst-case pairings (no short-circuit) to evaluate one ciphertext.

        With deduplication each distinct pattern is charged once; without it
        every token occurrence is charged, matching the naive path's bound.
        Subsumption can only reduce the realised cost below this bound.
        """
        if self.dedupe:
            seen: set[int] = set()
            cost = 0
            for _, entries in self._entries_by_alert:
                for entry in entries:
                    if entry.slot not in seen:
                        seen.add(entry.slot)
                        cost += entry.cost
            return cost
        return sum(entry.cost for _, entries in self._entries_by_alert for entry in entries)

    # ------------------------------------------------------------------
    # Wire form (process-boundary transport)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """Compact picklable form of the plan (plain ints/strs/tuples).

        The plan is serialized *once* per matching pass and shipped to every
        worker process; ciphertexts then travel per chunk.  Round-trips
        through :meth:`from_wire` bit-exactly: same entries, same slots, same
        subsumption edges, so workers evaluate precisely what the parent
        would have.
        """
        return {
            "kind": "token_plan",
            "order": self.order,
            "dedupe": self.dedupe,
            "subsume": self.subsume,
            "reduced": self.reduced,
            "total_tokens": self.total_tokens,
            "unique_patterns": self.unique_patterns,
            "generalizers": self._generalizers,
            "alerts": tuple(
                (
                    alert_id,
                    tuple(
                        (token_to_wire(entry.token), tuple(entry.positions), entry.cost, entry.slot)
                        for entry in entries
                    ),
                )
                for alert_id, entries in self._entries_by_alert
            ),
        }

    @classmethod
    def from_wire(cls, group, wire: dict[str, Any]) -> "TokenPlan":
        """Rebuild a plan from :meth:`to_wire` output, bound to ``group``."""
        if wire.get("kind") != "token_plan":
            raise ValueError("payload is not a serialized token plan")
        plan = cls.__new__(cls)
        plan.order = wire["order"]
        plan.dedupe = wire["dedupe"]
        plan.subsume = wire["subsume"]
        plan.reduced = wire.get("reduced", False)
        plan.total_tokens = wire["total_tokens"]
        plan.unique_patterns = wire["unique_patterns"]
        generalizers = wire["generalizers"]
        plan._generalizers = (
            tuple(tuple(gens) for gens in generalizers) if generalizers is not None else None
        )
        plan._entries_by_alert = tuple(
            (
                alert_id,
                tuple(
                    PlannedToken(
                        token=wire_to_token(group, token_wire),
                        positions=tuple(positions),
                        cost=cost,
                        slot=slot,
                    )
                    for token_wire, positions, cost, slot in entries
                ),
            )
            for alert_id, entries in wire["alerts"]
        )
        return plan


# ----------------------------------------------------------------------
# Evaluator construction (shared between the engine and worker processes)
# ----------------------------------------------------------------------
Evaluator = Callable[[HVECiphertext, int, dict[int, bool]], bool]


def _make_naive_evaluator(hve: HVE, token_lists: Sequence[Sequence[HVEToken]]) -> Evaluator:
    """Element-wise evaluation, exactly the seed's per-(user, token) path."""

    def evaluate(ciphertext: HVECiphertext, batch_index: int, shared: dict[int, bool]) -> bool:
        return hve.matches_any(ciphertext, token_lists[batch_index])

    return evaluate


def _make_planned_evaluator(hve: HVE, plan: TokenPlan) -> Evaluator:
    """Plan-driven evaluation through the fused exponent-arithmetic path.

    ``shared`` is the per-candidate slot cache: when deduplication is on,
    alerts sharing a pattern resolve from the cache instead of paying the
    pairings again.  With subsumption, the cache is additionally consulted
    through the plan's generaliser edges -- a cached ``False`` for a wildcard
    pattern settles every specialisation of it, and a fresh ``True`` for a
    specialisation back-fills its generalisers.

    Edges are walked recursively, so the evaluator is agnostic to whether the
    plan stores the full generaliser closure or its transitive reduction: the
    set of ancestors reached is the same either way.
    """
    entries_for_batch = tuple(entries for _, entries in plan.entries_by_alert)
    generalizers = plan.generalizers

    def ancestor_failed(slot: int, shared: dict[int, bool]) -> bool:
        # A superset pattern that already failed settles this specialisation
        # without pairings.  A True ancestor ends its branch: by the back-fill
        # invariant every ancestor of a True node is already True, so no False
        # can sit above it.
        stack = list(generalizers[slot])
        seen: set[int] = set()
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            outcome = shared.get(g)
            if outcome is False:
                return True
            if outcome is None:
                stack.extend(generalizers[g])
        return False

    def backfill_true(slot: int, shared: dict[int, bool]) -> None:
        # This pattern matched, so every pattern accepting a superset of its
        # indexes matches too.
        stack = list(generalizers[slot])
        seen: set[int] = set()
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            if shared.get(g) is None:
                shared[g] = True
            stack.extend(generalizers[g])

    def evaluate(ciphertext: HVECiphertext, batch_index: int, shared: dict[int, bool]) -> bool:
        for entry in entries_for_batch[batch_index]:
            outcome = shared.get(entry.slot)
            if outcome is None:
                if (
                    generalizers is not None
                    and generalizers[entry.slot]
                    and ancestor_failed(entry.slot, shared)
                ):
                    outcome = False
                else:
                    outcome = hve.matches_via_plan(ciphertext, entry.token, entry.positions)
                    if outcome and generalizers is not None and generalizers[entry.slot]:
                        backfill_true(entry.slot, shared)
                shared[entry.slot] = outcome
            if outcome:
                return True
        return False

    return evaluate


def _compile_fused_program(hve: HVE, plan: TokenPlan) -> FusedProgram:
    """Flatten a :class:`TokenPlan` into a backend-executable fused program.

    Token discrete logs are resolved once here; the backend's evaluation loop
    then touches no group objects at all.  Entry order, slots, costs and
    subsumption edges are taken verbatim from the plan, which is what keeps
    the fused path's outcomes and pairing charges bit-exact with the scalar
    planned evaluator.
    """
    batches = tuple(
        tuple(
            (
                entry.slot,
                entry.token.k0._discrete_log(),
                tuple(
                    (
                        position,
                        entry.token.k1[position]._discrete_log(),
                        entry.token.k2[position]._discrete_log(),
                    )
                    for position in entry.positions
                ),
                entry.cost,
            )
            for entry in entries
        )
        for _, entries in plan.entries_by_alert
    )
    return FusedProgram(
        modulus=hve.group.order,
        match_exp=hve._match_exp,
        batches=batches,
        generalizers=plan.generalizers,
        factors=(hve.group.p, hve.group.q),
    )


# ----------------------------------------------------------------------
# Process-pool worker protocol
# ----------------------------------------------------------------------
# Worker processes are primed once per pool via the initializer: the group
# constants, HVE width and the full evaluation payload (serialized plan or
# naive token lists) land in module globals, after which each task ships only
# a chunk of ciphertext wire forms.  Workers return their outcomes plus the
# number of pairings their private counter recorded, which the parent merges
# into its own counter -- totals are bit-exact with the inline path because
# per-candidate evaluation is independent of chunking.

_WORKER_STATE: dict[str, Any] = {}


def _build_worker_evaluation(group, width: int, payload: tuple[str, Any]) -> None:
    """Install the HVE, evaluator and (optional) fused program for ``payload``.

    Shared by the pool initializer and the in-place dispatch re-prime, so the
    two worker flavours cannot diverge on how a payload is interpreted.  The
    ``"planned_fused"`` payload kind carries the same plan wire as
    ``"planned"``; the worker additionally compiles it into a
    :class:`~repro.crypto.backends.base.FusedProgram` so its match calls run
    the backend's fused loop instead of per-token dispatch.
    """
    hve = HVE(width=width, group=group)
    kind, data = payload
    fused_program = None
    if kind in ("planned", "planned_fused"):
        plan = TokenPlan.from_wire(group, data)
        evaluate = _make_planned_evaluator(hve, plan)
        if kind == "planned_fused":
            fused_program = _compile_fused_program(hve, plan)
    else:
        token_lists = [[wire_to_token(group, wire) for wire in batch] for batch in data]
        evaluate = _make_naive_evaluator(hve, token_lists)
    _WORKER_STATE["hve"] = hve
    _WORKER_STATE["evaluate"] = evaluate
    _WORKER_STATE["fused_program"] = fused_program


def _process_worker_init(group_wire: tuple, width: int, payload: tuple[str, Any]) -> None:
    """Pool initializer: rebuild the group, HVE and evaluator in this process."""
    _build_worker_evaluation(wire_to_group(group_wire), width, payload)


def _process_worker_match(
    chunk: Sequence[tuple[tuple, tuple[int, ...]]],
) -> tuple[list[list[bool]], int, int, int]:
    """Evaluate one chunk of ``(ciphertext wire, needed batch indices)`` jobs.

    Returns the per-candidate outcome rows (aligned with the needed indices),
    the pairings this call recorded on the worker's private counter, the
    fused worklist calls made and the precomputation hits they scored.

    On the fused path the ciphertext wire forms *are* the evaluation jobs:
    the wire already carries the discrete logs the backend loop consumes, so
    no group elements are materialised at all.
    """
    hve: HVE = _WORKER_STATE["hve"]
    group = hve.group
    counter = group.counter
    before = counter.total
    hits_before = group.precomp_hits
    program: Optional[FusedProgram] = _WORKER_STATE.get("fused_program")
    fused_evals = 0
    if program is not None:
        rows, _ = group.fused_eval(
            program, [ciphertext_wire + (needed,) for ciphertext_wire, needed in chunk]
        )
        fused_evals = 1
    else:
        evaluate: Evaluator = _WORKER_STATE["evaluate"]
        rows = []
        for ciphertext_wire, needed in chunk:
            ciphertext = wire_to_ciphertext(group, ciphertext_wire)
            shared: dict[int, bool] = {}
            rows.append([evaluate(ciphertext, index, shared) for index in needed])
    return rows, counter.total - before, fused_evals, group.precomp_hits - hits_before


def _evaluate_resident_worklist(
    handle: tuple, worklist: Sequence[tuple[str, tuple[int, ...]]]
) -> tuple[list[list[bool]], int, int]:
    """Sync this worker's resident copy of one shard, then evaluate its worklist.

    The handle (see :meth:`repro.protocol.shards.ShardShipment.handle`) brings
    the resident shard up to the parent's version -- loading the spool file on
    first contact, applying the state-based delta afterwards -- and the
    worklist names ``(user_id, needed batch indices)`` jobs.  Unchanged users
    are evaluated from ciphertexts deserialized in a *previous* pass: nothing
    about them crossed the process boundary this call.  When a fused program
    is primed the whole worklist runs as one backend
    :meth:`~repro.crypto.backends.base.GroupBackend.fused_eval` call over the
    resident ciphertexts' cached exponent rows.  Returns the outcome rows,
    the version the resident shard ended at and the fused calls made (0 or
    1).  Shared by the PR 4 pool path and the affinity-dispatch path, so the
    resident-shard protocol cannot diverge between them.
    """
    from repro.protocol.shards import ResidentShard

    hve: HVE = _WORKER_STATE["hve"]
    residents: dict[tuple[str, int], ResidentShard] = _WORKER_STATE.setdefault("resident_shards", {})
    key = (handle[0], handle[1])  # (store token, shard id)
    resident = residents.get(key)
    if resident is None:
        resident = residents[key] = ResidentShard(hve.group)
    applied = resident.sync(handle)
    program: Optional[FusedProgram] = _WORKER_STATE.get("fused_program")
    if program is not None and worklist:
        rows, _ = hve.group.fused_eval(
            program,
            [
                resident.ciphertext(user_id)._exponent_rows + (needed,)
                for user_id, needed in worklist
            ],
        )
        return rows, applied, 1
    evaluate: Evaluator = _WORKER_STATE["evaluate"]
    rows: list[list[bool]] = []
    for user_id, needed in worklist:
        shared: dict[int, bool] = {}
        ciphertext = resident.ciphertext(user_id)
        rows.append([evaluate(ciphertext, index, shared) for index in needed])
    return rows, applied, 0


def _shard_worker_match(
    task: tuple[tuple, Sequence[tuple[str, tuple[int, ...]]]]
) -> tuple[list[list[bool]], int, int, int]:
    """Evaluate one shard's worklist from worker-resident ciphertexts.

    One ``(shipment handle, worklist)`` task of the PR 4 pool path; returns
    the outcome rows, the pairings this call recorded on the worker's private
    counter, the fused worklist calls made and the precomputation hits they
    scored.
    """
    handle, worklist = task
    group = _WORKER_STATE["hve"].group
    counter = group.counter
    before = counter.total
    hits_before = group.precomp_hits
    rows, _, fused_evals = _evaluate_resident_worklist(handle, worklist)
    return rows, counter.total - before, fused_evals, group.precomp_hits - hits_before


# ----------------------------------------------------------------------
# Affinity-dispatch worker protocol (see repro.service.dispatch)
# ----------------------------------------------------------------------
# The dispatch layer pins every worker process behind its own single-worker
# executor ("lane"), which is what makes the functions below meaningful:
# a task submitted to a lane always lands in the same process, so resident
# shards survive plan changes and the parent can track exactly which shard
# versions each worker has applied.


def _dispatch_worker_prime(group_wire: tuple, width: int, payload: tuple[str, Any]) -> bool:
    """(Re)prime this worker in place: rebuild the evaluator, keep residents.

    Unlike :func:`_process_worker_init` -- which runs in a *fresh* process --
    this runs as an ordinary task inside a live worker whenever the plan
    changes.  The group object is rebuilt only when the group *constants*
    actually changed -- the comparison deliberately ignores the wire's
    precomputation slot, so a table the parent built between passes arrives
    without invalidating the worker's resident, already-deserialized
    ciphertexts (group elements are bound to their group instance by
    identity); the table is instead installed into the live group.
    """
    group = _WORKER_STATE.get("group")
    cached_wire = _WORKER_STATE.get("group_wire")
    if group is None or cached_wire is None or tuple(cached_wire[:4]) != tuple(group_wire[:4]):
        group = wire_to_group(group_wire)
        _WORKER_STATE["group"] = group
        _WORKER_STATE["group_wire"] = group_wire
        # Residents deserialized against a previous group cannot serve the
        # new one; drop them so first contact bootstraps from the spool.
        _WORKER_STATE.pop("resident_shards", None)
    elif len(group_wire) > 4 and group_wire[4] is not None:
        group.install_precomputation(group_wire[4])
    _build_worker_evaluation(group, width, payload)
    return True


def _dispatch_worker_match(
    tasks: Sequence[tuple[tuple, Sequence[tuple[str, tuple[int, ...]]]]]
) -> tuple[tuple[tuple[int, list[list[bool]], int], ...], int, int, int]:
    """Evaluate every shard task routed to this lane's worker.

    ``tasks`` is a sequence of ``(shipment handle, worklist)`` pairs -- all
    the shards the dispatcher pinned to this worker that have work this pass.
    Returns, per shard, ``(shard_id, outcome rows, applied version)`` -- the
    applied version is what the parent acks -- plus the pairings recorded by
    this worker's private counter, the fused worklist calls made and the
    precomputation hits they scored.  Raises
    :class:`~repro.protocol.shards.StaleResidentShard` when a delta cannot be
    anchored (the dispatcher then re-ships from the floor).
    """
    group = _WORKER_STATE["hve"].group
    counter = group.counter
    before = counter.total
    hits_before = group.precomp_hits
    fused_evals = 0
    out: list[tuple[int, list[list[bool]], int]] = []
    for handle, worklist in tasks:
        rows, applied, fused = _evaluate_resident_worklist(handle, worklist)
        fused_evals += fused
        out.append((handle[1], rows, applied))
    return tuple(out), counter.total - before, fused_evals, group.precomp_hits - hits_before


def _dispatch_worker_evict(keys: Sequence[tuple[str, int]]) -> int:
    """Drop resident shards this worker no longer owns; returns how many."""
    residents = _WORKER_STATE.get("resident_shards")
    evicted = 0
    if residents:
        for key in keys:
            if residents.pop(tuple(key), None) is not None:
                evicted += 1
    return evicted


class EphemeralPools:
    """Per-call executors: each matching pass gets a fresh pool (seed behaviour).

    The engine acquires its executors through this small provider interface so
    a session shell can substitute long-lived pools -- see
    :class:`repro.service.executor.PersistentExecutorPool`, which keeps one
    process pool alive across matching passes and re-primes it only when the
    engine's plan version changes.  Providers must implement ``thread_pool``
    and ``process_pool`` as context managers yielding a
    :class:`concurrent.futures.Executor`.
    """

    @contextlib.contextmanager
    def thread_pool(self, workers: int) -> Iterator[concurrent.futures.Executor]:
        """A fresh thread pool, shut down when the matching pass completes."""
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        try:
            yield pool
        finally:
            pool.shutdown()

    @contextlib.contextmanager
    def process_pool(
        self, workers: int, prime_version: int, initargs: tuple
    ) -> Iterator[concurrent.futures.Executor]:
        """A fresh process pool primed via ``initargs``, shut down afterwards.

        ``prime_version`` identifies the evaluation payload baked into
        ``initargs`` (it changes exactly when the engine rebuilds its plan);
        ephemeral pools re-prime every call so they can ignore it.
        """
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_process_worker_init,
            initargs=initargs,
        )
        try:
            yield pool
        finally:
            pool.shutdown()


@dataclass
class _CachedEvaluation:
    """The reusable artefacts of one batch sequence: plan, evaluator, payload.

    Keyed by the *identity* of the batch objects: a session re-evaluating the
    same standing :class:`~repro.protocol.messages.TokenBatch` objects reuses
    the plan (and its serialized process payload) call after call, while any
    change to the batch tuple bumps ``version`` -- the signal pool providers
    use to re-prime worker processes.
    """

    batches: tuple[TokenBatch, ...]
    version: int
    evaluator: Evaluator
    plan: Optional[TokenPlan]
    #: Compiled once per plan when the engine's ``fused`` option is on; the
    #: worker payload kind then becomes ``"planned_fused"`` so worker
    #: processes compile their own copy from the same plan wire.
    fused_program: Optional[FusedProgram] = None
    #: Lazily-built resident packed worklist for the inline fused path
    #: (:class:`~repro.crypto.backends.base.FusedWorklist`); lives with the
    #: plan so its packed columns survive across passes and refresh
    #: incrementally as the candidate population drifts.
    fused_worklist: Optional[Any] = field(default=None, repr=False)
    _payload: Optional[tuple[str, Any]] = field(default=None, repr=False)

    def matches(self, batches: Sequence[TokenBatch]) -> bool:
        return len(self.batches) == len(batches) and all(
            cached is batch for cached, batch in zip(self.batches, batches)
        )

    def payload(self) -> tuple[str, Any]:
        """The picklable worker payload, serialized once per plan version."""
        if self._payload is None:
            if self.plan is not None:
                kind = "planned" if self.fused_program is None else "planned_fused"
                self._payload = (kind, self.plan.to_wire())
            else:
                self._payload = (
                    "naive",
                    tuple(
                        tuple(token_to_wire(token) for token in batch.tokens)
                        for batch in self.batches
                    ),
                )
        return self._payload


class MatchingEngine:
    """The single matching path of the service provider.

    Parameters
    ----------
    hve:
        The HVE instance shared with the rest of the deployment (the engine
        only ever calls query/match operations -- it never sees key material).
    options:
        Strategy and execution tunables; defaults to the planned strategy,
        cheapest-first order, deduplication and subsumption on, a single
        worker (thread executor) and no incremental state.
    pools:
        Executor provider for chunked matching.  Defaults to
        :class:`EphemeralPools` (a fresh pool per call); a session shell
        passes a persistent provider so high-frequency small batches amortise
        pool start-up.
    """

    def __init__(
        self,
        hve: HVE,
        options: Optional[MatchingOptions] = None,
        pools: Optional[EphemeralPools] = None,
    ):
        self.hve = hve
        self.options = options if options is not None else MatchingOptions()
        self.pools = pools if pools is not None else EphemeralPools()
        # alert_id -> (token signature, user_id -> (sequence_number, matched)).
        # The signature is the alert's ordered pattern tuple: a standing alert
        # re-declared with a different token set must not serve outcomes
        # computed for the old zone, so a signature change drops its state.
        self._alert_state: dict[str, tuple[tuple[str, ...], dict[str, tuple[int, bool]]]] = {}
        # Most-recent-first; more than one entry so an interleaved one-shot
        # alert does not evict a standing set's plan (see _evaluation_for).
        self._cache_entries: list[_CachedEvaluation] = []
        self._plan_version = 0
        #: Evaluations that rebuilt the plan / reused the cached one -- the
        #: session metrics observers report these per request.
        self.plan_builds = 0
        self.plan_reuses = 0
        #: Work accounting of the most recent pass (see :class:`PassStats`).
        self.last_pass = PassStats()
        # Zone dirty index: alert_id -> (token signature, shard versions at
        # the zone's last evaluation).  Only maintained for sharded stores in
        # incremental mode (see match_store); a zone whose frontier matches
        # every current shard version has nothing to re-evaluate.
        self._zone_frontier: dict[str, tuple[tuple[str, ...], tuple[int, ...]]] = {}
        # Fully-warm fast path: (key, notifications, candidate count) of the
        # last assembled pass, replayed verbatim when every zone is clean.
        self._warm_pass: Optional[tuple[tuple, tuple[Notification, ...], int]] = None
        # Private resilience runtime, created lazily when the pool provider
        # does not carry one (bare engines, EphemeralPools).
        self._resilience = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, batches: Sequence[TokenBatch]) -> TokenPlan:
        """Build the :class:`TokenPlan` this engine would evaluate for ``batches``."""
        return TokenPlan(
            batches,
            order=self.options.order,
            dedupe=self.options.dedupe,
            subsume=self.options.subsume,
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(
        self,
        batches: Sequence[TokenBatch],
        candidates: Iterable[MatchCandidate],
        descriptions: Optional[Mapping[str, str]] = None,
        *,
        sharded_store=None,
    ) -> list[Notification]:
        """Match every alert batch against every candidate ciphertext.

        Semantics are identical across strategies, executors and worker
        counts: per candidate, alerts are evaluated in declaration order and
        each alert short-circuits on its first matching token; a user can be
        notified for several distinct alerts but only once per alert.
        Notifications come back in (candidate, alert) order.

        ``sharded_store`` (normally supplied by :meth:`match_store`) must be
        the :class:`~repro.protocol.shards.ShardedCiphertextStore` the
        candidates came from; with the process executor the engine then ships
        shard handles and deltas instead of per-candidate wire forms.
        """
        batches = list(batches)
        candidates = list(candidates)
        stats = self.last_pass = PassStats(
            candidates=len(candidates), zones_evaluated=len(batches)
        )
        if not batches or not candidates:
            stats.zones_evaluated = 0
            return []
        outcomes = self._evaluate_all(batches, candidates, sharded_store=sharded_store)
        return self._finish(batches, candidates, outcomes, descriptions)

    def _finish(
        self,
        batches: Sequence[TokenBatch],
        candidates: Sequence[MatchCandidate],
        outcomes: Sequence[Sequence[bool]],
        descriptions: Optional[Mapping[str, str]],
    ) -> list[Notification]:
        """Record incremental outcomes and assemble (candidate, alert)-ordered
        notifications from the per-candidate outcome rows."""
        descriptions = descriptions or {}
        if self.options.incremental:
            outcome_maps = [self._alert_state[batch.alert_id][1] for batch in batches]
        notifications: list[Notification] = []
        for candidate, per_batch in zip(candidates, outcomes):
            for index, (batch, matched) in enumerate(zip(batches, per_batch)):
                if self.options.incremental:
                    outcome_maps[index][candidate.user_id] = (candidate.sequence_number, matched)
                if matched:
                    notifications.append(
                        Notification(
                            user_id=candidate.user_id,
                            alert_id=batch.alert_id,
                            description=descriptions.get(batch.alert_id, ""),
                        )
                    )
        return notifications

    def match_store(
        self,
        batches: Sequence[TokenBatch],
        store,
        now: float,
        descriptions: Optional[Mapping[str, str]] = None,
    ) -> list[Notification]:
        """Match alert batches against the fresh reports of a ciphertext store.

        A sharded store (anything exposing ``ship_plan``/``shard_versions``,
        i.e. :class:`~repro.protocol.shards.ShardedCiphertextStore`) upgrades
        the pass twice over: the process executor ships shard handles and
        deltas instead of per-candidate ciphertext wire forms, and -- in
        incremental mode -- the per-zone dirty index skips standing zones
        whose (shard, version) frontier is already current (see
        :class:`PassStats` for the receipts).
        """
        batches = list(batches)
        sharded = hasattr(store, "ship_plan") and hasattr(store, "shard_versions")
        if sharded and self.options.incremental and batches:
            return self._match_store_targeted(batches, store, now, descriptions)
        return self.match(
            batches,
            store.fresh_candidates(now),
            descriptions=descriptions,
            sharded_store=store if sharded and self._ships_shards() else None,
        )

    def _ships_shards(self) -> bool:
        """True when this engine's passes cross a process boundary.

        Only the process executor ships anything; inline and thread matching
        evaluate straight off the live store, so they must never be routed
        through shipment planning (the sharded store still provides the
        version clock for zone targeting either way).
        """
        return self.options.executor == "process" and self.options.workers > 1

    def _match_store_targeted(
        self,
        batches: Sequence[TokenBatch],
        store,
        now: float,
        descriptions: Optional[Mapping[str, str]],
    ) -> list[Notification]:
        """The zone-targeted pass over a sharded store (incremental mode).

        Expiry is folded into the version clock first: purging stale reports
        advances the owning shards' versions (and drops the purged users'
        remembered outcomes, so a later re-subscription can never replay a
        stale verdict).  Every standing zone then compares its frontier --
        the shard versions it last evaluated -- against the store: a zone
        whose frontier matches every shard is *skipped* (its remembered
        outcomes already cover every fresh candidate at its current sequence
        number), and when every zone is clean the pass replays the previous
        notifications without touching candidates, plan or pools at all.
        """
        stats = self.last_pass = PassStats()
        descriptions = descriptions or {}
        if store.max_age_seconds is not None:
            # One scan: purge_expired removes the stale reports, advances the
            # owning shards' versions and hands back the purged pseudonyms.
            for user_id in store.purge_expired(now):
                for _, outcomes in self._alert_state.values():
                    outcomes.pop(user_id, None)

        versions = store.shard_versions()
        signatures = [tuple(token.pattern for token in batch.tokens) for batch in batches]
        clean = []
        for batch, signature in zip(batches, signatures):
            frontier = self._zone_frontier.get(batch.alert_id)
            clean.append(frontier is not None and frontier == (signature, versions))
        stats.zones_skipped = sum(clean)
        stats.zones_evaluated = len(batches) - stats.zones_skipped

        warm_key = (
            versions,
            tuple(batch.alert_id for batch in batches),
            tuple(sorted(descriptions.items())),
        )
        if all(clean) and self._warm_pass is not None and self._warm_pass[0] == warm_key:
            stats.candidates = self._warm_pass[2]
            return list(self._warm_pass[1])

        candidates = store.fresh_candidates(now)
        stats.candidates = len(candidates)
        outcomes = self._evaluate_all(
            batches, candidates, sharded_store=store if self._ships_shards() else None
        )
        notifications = self._finish(batches, candidates, outcomes, descriptions)
        for batch, signature in zip(batches, signatures):
            self._zone_frontier[batch.alert_id] = (signature, versions)
        self._warm_pass = (warm_key, tuple(notifications), len(candidates))
        return notifications

    # ------------------------------------------------------------------
    # Incremental state
    # ------------------------------------------------------------------
    def standing_alerts(self) -> list[str]:
        """Alert ids with remembered incremental outcomes."""
        return sorted(self._alert_state)

    def forget_alert(self, alert_id: str) -> None:
        """Drop the incremental state of one standing alert (no-op if absent)."""
        self._alert_state.pop(alert_id, None)
        self._zone_frontier.pop(alert_id, None)
        self._warm_pass = None

    def reset_state(self) -> None:
        """Drop all incremental state (including the zone dirty index)."""
        self._alert_state.clear()
        self._zone_frontier.clear()
        self._warm_pass = None

    def export_state(self) -> dict[str, Any]:
        """JSON-compatible snapshot of the incremental re-evaluation state.

        Captures, per standing alert, the token-pattern signature and every
        remembered (user, sequence number, outcome) triple.  Persist it next
        to the ciphertext store (see
        :meth:`repro.protocol.store.CiphertextStore.save`) so a provider
        restart does not force a full re-evaluation of standing alerts.
        """
        return {
            "kind": "matching_engine_state",
            "alerts": {
                alert_id: {
                    "signature": list(signature),
                    "outcomes": {
                        user_id: [sequence_number, matched]
                        for user_id, (sequence_number, matched) in sorted(outcomes.items())
                    },
                }
                for alert_id, (signature, outcomes) in self._alert_state.items()
            },
        }

    def import_state(self, payload: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`export_state` (replaces state)."""
        if payload.get("kind") != "matching_engine_state":
            raise ValueError("payload is not a serialized matching-engine state")
        state: dict[str, tuple[tuple[str, ...], dict[str, tuple[int, bool]]]] = {}
        for alert_id, entry in payload.get("alerts", {}).items():
            signature = tuple(entry.get("signature", ()))
            outcomes = {
                user_id: (int(sequence_number), bool(matched))
                for user_id, (sequence_number, matched) in entry.get("outcomes", {}).items()
            }
            state[alert_id] = (signature, outcomes)
        self._alert_state = state
        # Frontiers are clocked against a live store's shard versions; a
        # restored snapshot starts a fresh version history, so they must not
        # survive the import.
        self._zone_frontier.clear()
        self._warm_pass = None

    # ------------------------------------------------------------------
    # Evaluation internals
    # ------------------------------------------------------------------
    #: How many distinct batch tuples keep their plans cached at once.  One
    #: standing set plus a few interleaved one-shot / ad-hoc evaluations fit
    #: comfortably; entries are tiny (the tokens are alive anyway).
    _PLAN_CACHE_SIZE = 4

    def _evaluation_for(self, batches: Sequence[TokenBatch]) -> _CachedEvaluation:
        """The (possibly cached) evaluation artefacts for ``batches``.

        The cache is keyed by batch-object identity: a standing set of alerts
        re-evaluated with the same :class:`TokenBatch` objects skips plan
        construction (and payload serialization) entirely, which is what lets
        a long-lived session amortise planning across high-frequency calls.
        A small LRU of recent batch tuples is kept so a one-shot alert
        evaluated between standing ticks does not evict the standing plan.
        An unseen tuple bumps the plan version.
        """
        for index, entry in enumerate(self._cache_entries):
            if entry.matches(batches):
                if index:
                    self._cache_entries.insert(0, self._cache_entries.pop(index))
                self.plan_reuses += 1
                return entry
        self.plan_builds += 1
        self._plan_version += 1
        if self.options.strategy == "planned":
            plan: Optional[TokenPlan] = self.plan(batches)
            evaluator = _make_planned_evaluator(self.hve, plan)
            fused_program = _compile_fused_program(self.hve, plan) if self.options.fused else None
        else:
            plan = None
            fused_program = None
            evaluator = _make_naive_evaluator(self.hve, [list(batch.tokens) for batch in batches])
        cached = _CachedEvaluation(
            batches=tuple(batches),
            version=self._plan_version,
            evaluator=evaluator,
            plan=plan,
            fused_program=fused_program,
        )
        self._cache_entries.insert(0, cached)
        del self._cache_entries[self._PLAN_CACHE_SIZE :]
        return cached

    @property
    def plan_version(self) -> int:
        """Monotonic counter bumped whenever the evaluation plan is rebuilt."""
        return self._plan_version

    def _resolve_incremental(
        self, batches: Sequence[TokenBatch], candidates: Sequence[MatchCandidate]
    ) -> tuple[list[list[Optional[bool]]], list[tuple[int, ...]]]:
        """Split outcomes into remembered rows and still-needed batch indices.

        Returns per-candidate rows prefilled with cached outcomes (``None``
        where evaluation is required) plus, per candidate, the tuple of batch
        indices to evaluate.  With incremental mode off every index is
        needed.  Cache lookups stay in the parent process: workers only ever
        see the (ciphertext, needed indices) jobs.
        """
        if self.options.incremental:
            cached_by_batch = []
            for batch in batches:
                signature = tuple(token.pattern for token in batch.tokens)
                state = self._alert_state.get(batch.alert_id)
                if state is None or state[0] != signature:
                    # New standing alert, or the alert was re-declared with a
                    # different token set: previous outcomes are invalid.
                    state = (signature, {})
                    self._alert_state[batch.alert_id] = state
                cached_by_batch.append(state[1])
        else:
            cached_by_batch = None

        rows: list[list[Optional[bool]]] = []
        needed: list[tuple[int, ...]] = []
        for candidate in candidates:
            row: list[Optional[bool]] = [None] * len(batches)
            need: list[int] = []
            for index in range(len(batches)):
                if cached_by_batch is not None:
                    previous = cached_by_batch[index].get(candidate.user_id)
                    if previous is not None and previous[0] == candidate.sequence_number:
                        row[index] = previous[1]
                        continue
                need.append(index)
            rows.append(row)
            needed.append(tuple(need))
        return rows, needed

    def _evaluate_all(
        self,
        batches: Sequence[TokenBatch],
        candidates: Sequence[MatchCandidate],
        sharded_store=None,
    ) -> list[list[bool]]:
        """Per-candidate, per-batch outcomes, honoring incremental state,
        worker count and executor choice."""
        rows, needed = self._resolve_incremental(batches, candidates)
        if not any(needed):
            # The incremental cache answered everything: skip plan building
            # (and any pool) outright.
            return rows  # type: ignore[return-value]
        evaluation = self._evaluation_for(batches)
        workers = min(self.options.workers, len(candidates))
        # Parent-side precomputation hits (table-served burns, program-cache
        # hits) accrue on the live group; worker-side deltas are merged by the
        # process-path consumers.
        hits_before = self.hve.group.precomp_hits

        if workers > 1 and self.options.executor == "process" and sharded_store is not None:
            evaluated = self._with_resilience(
                lambda: self._evaluate_process_sharded(
                    evaluation, sharded_store, candidates, needed, workers
                ),
                lambda: self._evaluate_inline(evaluation, candidates, needed),
            )
        elif workers > 1 and self.options.executor == "process":
            evaluated = self._with_resilience(
                lambda: self._evaluate_process(evaluation, candidates, needed, workers),
                lambda: self._evaluate_inline(evaluation, candidates, needed),
            )
        elif workers <= 1:
            evaluated = self._evaluate_inline(evaluation, candidates, needed)
        else:
            evaluated = self._evaluate_threads(evaluation, candidates, needed, workers)

        self.last_pass.precomp_hits += self.hve.group.precomp_hits - hits_before
        for row, need, results in zip(rows, needed, evaluated):
            for index, outcome in zip(need, results):
                row[index] = outcome
        return rows  # type: ignore[return-value]  # every None has been filled

    def _evaluate_threads(
        self,
        evaluation: _CachedEvaluation,
        candidates: Sequence[MatchCandidate],
        needed: Sequence[tuple[int, ...]],
        workers: int,
    ) -> list[list[bool]]:
        """Chunked evaluation over a thread pool sharing the parent group.

        With a fused program each chunk becomes one backend worklist call;
        otherwise candidates are evaluated one scalar job at a time, exactly
        as before.  Chunk results concatenate in order either way.
        """
        program = evaluation.fused_program
        jobs = list(zip(candidates, needed))
        chunk_size = self._chunk_size(len(jobs), workers)
        chunks = [jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)]
        if program is not None:
            group = self.hve.group

            def run_chunk(chunk: list) -> list[list[bool]]:
                rows, _ = group.fused_eval(
                    program,
                    [
                        candidate.ciphertext._exponent_rows + (need,)
                        for candidate, need in chunk
                    ],
                )
                return rows

        else:
            evaluate = evaluation.evaluator

            def evaluate_candidate(job: tuple[MatchCandidate, tuple[int, ...]]) -> list[bool]:
                candidate, need = job
                shared: dict[int, bool] = {}
                return [evaluate(candidate.ciphertext, index, shared) for index in need]

            def run_chunk(chunk: list) -> list[list[bool]]:
                return [evaluate_candidate(job) for job in chunk]

        with self.pools.thread_pool(workers) as pool:
            chunk_rows = list(pool.map(run_chunk, chunks))
        if program is not None:
            self.last_pass.fused_evals += len(chunks)
        return [row for chunk in chunk_rows for row in chunk]

    def _chunk_size(self, n_jobs: int, workers: int) -> int:
        chunk_size = self.options.chunk_size
        if chunk_size is None:
            chunk_size = -(-n_jobs // workers)  # ceil: every worker gets a chunk
        return chunk_size

    # ------------------------------------------------------------------
    # Resilience: bounded waits, retries, graceful degradation
    # ------------------------------------------------------------------
    @property
    def resilience(self):
        """The session's :class:`~repro.service.resilience.ResilienceRuntime`.

        Shared with the dispatcher through the pool provider when it carries
        one (:class:`~repro.service.executor.PersistentExecutorPool`); bare
        engines lazily build a private default-policy runtime, so the process
        paths are *always* deadline-bounded.  Imported lazily -- ``service``
        imports this module during package init.
        """
        runtime = getattr(self.pools, "resilience", None)
        if runtime is not None:
            return runtime
        if self._resilience is None:
            from repro.service.resilience import ResilienceRuntime

            self._resilience = ResilienceRuntime()
        return self._resilience

    def _evaluate_inline(
        self,
        evaluation: _CachedEvaluation,
        candidates: Sequence[MatchCandidate],
        needed: Sequence[tuple[int, ...]],
    ) -> list[list[bool]]:
        """Single-threaded evaluation of the outstanding (candidate, batch) work.

        The reference path the executor tiers must agree with bit-exactly --
        and therefore also the graceful-degradation fallback: a pass whose
        process tier keeps failing is answered here, burning the same
        pairings on the parent counter that the workers would have merged.

        With a fused program the *entire* outstanding worklist is one backend
        call: per candidate the cached exponent rows plus the needed batch
        indices, no per-token Python dispatch at all.  From
        ``fused_pack_min_jobs`` candidates up, the call runs through the
        plan's resident :class:`~repro.crypto.backends.base.FusedWorklist`,
        keyed by ``(user_id, sequence_number)`` so repeat passes reuse the
        packed columns and movers are patched in place.
        """
        program = evaluation.fused_program
        if program is not None:
            jobs = [
                candidate.ciphertext._exponent_rows + (need,)
                for candidate, need in zip(candidates, needed)
            ]
            worklist = keys = None
            if len(jobs) >= self.options.fused_pack_min_jobs:
                worklist = evaluation.fused_worklist
                if worklist is None:
                    worklist = evaluation.fused_worklist = (
                        self.hve.group.backend.make_fused_worklist(program)
                    )
                keys = [
                    (candidate.user_id, candidate.sequence_number)
                    for candidate in candidates
                ]
            evaluated, _ = self.hve.group.fused_eval(
                program, jobs, worklist=worklist, keys=keys
            )
            self.last_pass.fused_evals += 1
            return evaluated
        evaluate = evaluation.evaluator
        evaluated: list[list[bool]] = []
        for candidate, need in zip(candidates, needed):
            shared: dict[int, bool] = {}
            evaluated.append([evaluate(candidate.ciphertext, index, shared) for index in need])
        return evaluated

    def _with_resilience(
        self,
        attempt: Callable[[], list[list[bool]]],
        inline_fallback: Callable[[], list[list[bool]]],
    ) -> list[list[bool]]:
        """Run one process-tier evaluation attempt under the resilience policy.

        Failures the layer knows how to recover from -- a broken pool, an
        expired task deadline, a quarantined lane, a stale resident that
        could not be repaired in-pass -- are retried up to ``max_retries``
        times with seeded-jitter backoff (each retry runs against freshly
        respawned workers, so pairing totals stay bit-exact: a failed
        attempt's worker counters are never merged).  When the retries are
        exhausted the pass degrades to :meth:`_evaluate_inline` and still
        returns a correct result, unless the policy demands propagation.
        The runtime counter deltas are folded into :class:`PassStats` either
        way, so the session metrics see every retry and degradation.
        """
        from repro.protocol.shards import StaleResidentShard
        from repro.service.resilience import LaneQuarantined, TaskDeadlineExceeded

        runtime = self.resilience
        runtime.begin_pass()
        before = runtime.snapshot()
        stats = self.last_pass
        try:
            failure: Optional[BaseException] = None
            for attempt_no in range(runtime.policy.max_retries + 1):
                if attempt_no:
                    runtime.record_retry()
                    delay = runtime.backoff_seconds(attempt_no - 1)
                    if delay > 0:
                        time.sleep(delay)
                try:
                    return attempt()
                except (
                    concurrent.futures.BrokenExecutor,
                    TaskDeadlineExceeded,
                    LaneQuarantined,
                    StaleResidentShard,
                ) as exc:
                    failure = exc
            if not runtime.policy.degrade_inline:
                raise failure  # type: ignore[misc]  # loop ran at least once
            runtime.record_degraded_pass()
            return inline_fallback()
        finally:
            after = runtime.snapshot()
            stats.retries += after["retries"] - before["retries"]
            stats.deadline_hits += after["deadline_hits"] - before["deadline_hits"]
            stats.quarantines += after["quarantines"] - before["quarantines"]
            stats.degraded_passes += after["degraded_passes"] - before["degraded_passes"]
            stats.stale_resets += after["stale_resets"] - before["stale_resets"]

    @staticmethod
    def _kill_executor_processes(executor, join_timeout: float = 5.0) -> None:
        """SIGKILL a plain process pool's workers (deadline-hit escalation).

        Mirrors :meth:`repro.service.dispatch.WorkerLane.kill_processes`: a
        worker wedged inside a task ignores ``shutdown``'s exit request and
        would leak -- and an ephemeral pool's ``shutdown(wait=True)`` would
        block on it forever.  Killing first makes both shutdown flavours
        terminate promptly.
        """
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except OSError:
                    pass
        deadline = time.time() + join_timeout
        for process in processes:
            process.join(max(0.0, deadline - time.time()))

    def _evaluate_process(
        self,
        evaluation: _CachedEvaluation,
        candidates: Sequence[MatchCandidate],
        needed: Sequence[tuple[int, ...]],
        workers: int,
    ) -> list[list[bool]]:
        """Fan candidate chunks out to a process pool from the pool provider.

        The plan (or naive token lists) and group constants are serialized
        once per plan version and installed in each worker by the pool
        initializer; per-chunk traffic is limited to compact ciphertext wire
        forms.  Candidates the incremental cache fully answered are never
        serialized or shipped, and when *nothing* needs evaluation no pool is
        touched at all.  Worker pairing totals are merged into the parent
        counter without re-burning pairing work (the workers already did),
        keeping :class:`~repro.crypto.counting.PairingCounter` totals
        bit-exact with the inline path.
        """
        # Only candidates with work left cross the process boundary.
        jobs = [
            (position, (ciphertext_to_wire(candidate.ciphertext), need))
            for position, (candidate, need) in enumerate(zip(candidates, needed))
            if need
        ]
        evaluated: list[list[bool]] = [[] for _ in candidates]
        if not jobs:
            return evaluated

        group = self.hve.group
        self._require_process_backend(group)
        self.last_pass.ciphertexts_shipped += len(jobs)
        payload = evaluation.payload()
        workers = min(workers, len(jobs))
        chunk_size = self._chunk_size(len(jobs), workers)
        chunks = [jobs[i : i + chunk_size] for i in range(0, len(jobs), chunk_size)]
        with self.pools.process_pool(
            workers=workers,
            prime_version=evaluation.version,
            initargs=(group_to_wire(group), self.hve.width, payload),
        ) as pool:
            futures = [
                pool.submit(_process_worker_match, [job for _, job in chunk]) for chunk in chunks
            ]
            chunk_results = [self._chunk_result(pool, future) for future in futures]
        worker_pairings = 0
        stats = self.last_pass
        for chunk, (rows, pairings, fused_evals, precomp_hits) in zip(chunks, chunk_results):
            worker_pairings += pairings
            stats.fused_evals += fused_evals
            stats.precomp_hits += precomp_hits
            for (position, _), row in zip(chunk, rows):
                evaluated[position] = row
        group.counter.record_pairing(worker_pairings)
        return evaluated

    def _chunk_result(self, pool, future: concurrent.futures.Future):
        """Await one plain-pool chunk under the resilience task deadline.

        A timeout SIGKILLs the (hung) pool workers -- otherwise the pool's
        shutdown would block on them forever -- and raises
        :class:`~repro.service.resilience.TaskDeadlineExceeded`, which the
        pool provider treats like a broken pool (drop and restart) and
        :meth:`_with_resilience` retries or degrades.
        """
        from repro.service.resilience import TaskDeadlineExceeded

        runtime = self.resilience
        try:
            return future.result(timeout=runtime.task_deadline)
        except concurrent.futures.TimeoutError:
            future.cancel()
            runtime.deadline_hits += 1
            self._kill_executor_processes(pool)
            raise TaskDeadlineExceeded(
                f"process-pool chunk exceeded the {runtime.task_deadline:.3g}s task deadline"
            ) from None

    @staticmethod
    def _require_process_backend(group) -> None:
        # Workers resolve the backend by registry name; fail here with the
        # real cause rather than letting every worker die into an opaque
        # BrokenProcessPool (e.g. an unregistered custom backend instance).
        from repro.crypto.backends import get_backend

        try:
            get_backend(group.backend_name)
        except (ValueError, RuntimeError) as exc:
            raise RuntimeError(
                f"executor='process' requires a crypto backend that worker processes can "
                f"resolve by name; backend {group.backend_name!r} is not registered or not "
                f"available (register it via repro.crypto.backends.register_backend, or use "
                f"executor='thread')"
            ) from exc

    def _evaluate_process_sharded(
        self,
        evaluation: _CachedEvaluation,
        store,
        candidates: Sequence[MatchCandidate],
        needed: Sequence[tuple[int, ...]],
        workers: int,
    ) -> list[list[bool]]:
        """Shard-targeted process fan-out: ship versions and deltas, not bytes.

        Candidates with work left are grouped by shard and each shard becomes
        one worker task carrying the store's cheapest
        :class:`~repro.protocol.shards.ShardShipment` (a spool-file reference
        on first contact, a state-based delta afterwards, nothing but the
        version handle when the shard is unchanged) plus the per-user
        worklist.  Workers evaluate from their resident, already-deserialized
        ciphertexts, so a warm pass pays no serialization at either end --
        the term the unsharded path re-pays per call.  Pairing totals merge
        into the parent counter bit-exactly, as in the unsharded path.

        When the pool provider exposes an affinity dispatcher (see
        :class:`repro.service.dispatch.AffinityDispatcher`), the pass is
        routed through :meth:`_evaluate_process_affinity` instead: shards are
        pinned to workers, deltas are computed against each worker's acked
        version and plan changes re-prime the live pool in place.
        """
        jobs_by_shard: dict[int, list[tuple[int, str, tuple[int, ...]]]] = {}
        for position, (candidate, need) in enumerate(zip(candidates, needed)):
            if need:
                shard = store.shard_of(candidate.user_id)
                jobs_by_shard.setdefault(shard, []).append((position, candidate.user_id, need))
        evaluated: list[list[bool]] = [[] for _ in candidates]
        if not jobs_by_shard:
            return evaluated

        dispatcher = getattr(self.pools, "dispatcher", None)
        if dispatcher is not None:
            return self._evaluate_process_affinity(
                dispatcher, evaluation, store, jobs_by_shard, evaluated
            )

        group = self.hve.group
        self._require_process_backend(group)
        payload = evaluation.payload()
        stats = self.last_pass
        tasks = []
        ordered_shards = sorted(jobs_by_shard)
        for shard_id in ordered_shards:
            shipment = store.ship_plan(shard_id)
            worklist = tuple((user_id, need) for _, user_id, need in jobs_by_shard[shard_id])
            tasks.append((shipment.handle(), worklist))
            stats.shards_shipped += 1
            stats.bytes_shipped += shipment.bytes_shipped
            stats.ciphertexts_shipped += shipment.record_count
            if shipment.full_ship:
                stats.shards_full += 1
            else:
                stats.shards_delta += 1
                shipped_users = {user_id for user_id, _, _ in shipment.upserts}
                stats.resident_hits += sum(
                    1 for user_id, _ in worklist if user_id not in shipped_users
                )
        from repro.protocol.shards import CorruptShardShipment

        try:
            with self.pools.process_pool(
                workers=min(workers, len(tasks)),
                prime_version=evaluation.version,
                initargs=(group_to_wire(group), self.hve.width, payload),
            ) as pool:
                futures = [pool.submit(_shard_worker_match, task) for task in tasks]
                shard_results = [self._chunk_result(pool, future) for future in futures]
        except CorruptShardShipment as exc:
            # The spool file backing this shard's floor failed its checksum
            # in the worker.  Drop the floor so the retry full-ships the
            # shard from the live reports (rewriting a clean spool).
            store.invalidate_floor(exc.shard_id)
            raise
        worker_pairings = 0
        for shard_id, (rows, pairings, fused_evals, precomp_hits) in zip(
            ordered_shards, shard_results
        ):
            worker_pairings += pairings
            stats.fused_evals += fused_evals
            stats.precomp_hits += precomp_hits
            for (position, _, _), row in zip(jobs_by_shard[shard_id], rows):
                evaluated[position] = row
        group.counter.record_pairing(worker_pairings)
        return evaluated

    @staticmethod
    def _record_transport(stats: PassStats, shipment, acked: Optional[int]) -> bool:
        """Fold one shard shipment's *transport* facts into the pass receipts.

        Recorded at shipping time -- these bytes/records genuinely travelled
        even if the receiving worker later fails.  Returns whether the
        shipment was an acked delta; the evaluation-dependent receipts
        (``resident_hits``, ``affinity_hits``) are recorded separately, only
        for shipments a worker actually evaluated from.
        """
        stats.shards_shipped += 1
        stats.bytes_shipped += shipment.bytes_shipped
        stats.ciphertexts_shipped += shipment.record_count
        if shipment.full_ship:
            stats.shards_full += 1
            return False
        if acked is not None and shipment.delta_base == acked:
            stats.shards_acked += 1
            stats.acked_delta_bytes += shipment.bytes_shipped
            return True
        stats.shards_delta += 1
        return False

    def _evaluate_process_affinity(
        self,
        dispatcher,
        evaluation: _CachedEvaluation,
        store,
        jobs_by_shard: dict[int, list[tuple[int, str, tuple[int, ...]]]],
        evaluated: list[list[bool]],
    ) -> list[list[bool]]:
        """Affinity-dispatched fan-out: pinned shards, acked deltas, live pool.

        Each shard is routed to the worker lane the dispatcher's rendezvous
        hash pins it to, and its shipment is computed against that worker's
        *acked* version -- so a warm pass ships exactly the records the worker
        has not applied yet (usually none), instead of the whole
        floor->current span.  Plan changes were already handled by
        :meth:`~repro.service.dispatch.AffinityDispatcher.ensure`, which
        re-primes the live workers in place rather than restarting them, so
        resident shards and warm OS pages survive plan churn.

        Failure handling extends PR 4's broken-pool retry: a lane that cannot
        anchor an acked delta (:class:`~repro.protocol.shards.StaleResidentShard`)
        has its acks reset and is re-shipped from the spool floor within the
        same pass; a corrupt spool (:class:`~repro.protocol.shards.CorruptShardShipment`)
        additionally invalidates the floor so the re-ship rewrites it from the
        live reports.  Every wait runs through the dispatcher's bounded
        :meth:`~repro.service.dispatch.AffinityDispatcher.result_within` -- a
        hung worker is killed at the task deadline, not awaited forever -- and
        a lane whose stale-reset streak caps out is quarantined (respawned
        under the same name) instead of re-shipped.  The terminal error of
        each flavour propagates to :meth:`_with_resilience`, which retries the
        whole pass against the respawned lanes or degrades inline.  Pairing
        totals are merged only when every lane succeeded, keeping the counter
        bit-exact with the inline path under retries.
        """
        from repro.protocol.shards import CorruptShardShipment, StaleResidentShard
        from repro.service.resilience import LaneQuarantined, TaskDeadlineExceeded

        group = self.hve.group
        self._require_process_backend(group)
        payload = evaluation.payload()
        stats = self.last_pass
        stats.inplace_reprimes += dispatcher.ensure(
            prime_version=evaluation.version,
            initargs=(group_to_wire(group), self.hve.width, payload),
        )
        token = store.store_token
        per_lane: dict[Any, list[tuple[int, tuple, tuple]]] = {}
        # Per shard: (worklist, users the applied shipment carried -- None for
        # a full ship, where nothing is resident -- acked?).  These are the
        # facts the evaluation-dependent receipts need, kept current when a
        # stale lane forces a floor re-ship.
        hit_facts: dict[int, tuple[tuple, Optional[set], bool]] = {}
        for shard_id in sorted(jobs_by_shard):
            lane = dispatcher.lane_for(token, shard_id)
            acked = dispatcher.acked_version(lane, token, shard_id)
            shipment = store.ship_plan(shard_id, acked_version=acked)
            worklist = tuple((user_id, need) for _, user_id, need in jobs_by_shard[shard_id])
            was_acked = self._record_transport(stats, shipment, acked)
            shipped = None if shipment.full_ship else {u for u, _, _ in shipment.upserts}
            hit_facts[shard_id] = (worklist, shipped, was_acked)
            per_lane.setdefault(lane, []).append((shard_id, shipment.handle(), worklist))

        futures = [
            (
                lane,
                tasks,
                dispatcher.submit(
                    lane, _dispatch_worker_match, tuple((h, w) for _, h, w in tasks)
                ),
                time.perf_counter(),
            )
            for lane, tasks in per_lane.items()
        ]
        runtime = dispatcher.resilience
        lane_results: list[tuple[Any, list, tuple]] = []
        stale_lanes: list[tuple[Any, list, BaseException]] = []
        broken_error: Optional[BaseException] = None
        for lane, tasks, future, submitted in futures:
            try:
                lane_results.append(
                    (lane, tasks, dispatcher.result_within(lane, future, label="match"))
                )
                # Load sample for the autoscaler: this lane's queue depth
                # (shard-tasks this pass) and submit->receipt latency.
                dispatcher.observe_load(lane, len(tasks), time.perf_counter() - submitted)
            except StaleResidentShard as exc:
                stale_lanes.append((lane, tasks, exc))
            except (concurrent.futures.BrokenExecutor, TaskDeadlineExceeded) as exc:
                # result_within already struck the lane and respawned it.
                if broken_error is None:
                    broken_error = exc
        for lane, tasks, stale_exc in stale_lanes:
            # The worker cannot anchor at least one acked delta (its resident
            # state regressed without the parent noticing), or its spool
            # failed its checksum.  A corrupt spool first invalidates the
            # floor so the re-ship rewrites it from the live reports -- a
            # floor re-ship of the same file would fail identically forever.
            if isinstance(stale_exc, CorruptShardShipment):
                store.invalidate_floor(stale_exc.shard_id)
            if runtime.record_stale(lane.name):
                # The lane's consecutive-stale streak capped out: quarantine
                # it (respawn under the same name) rather than feed it yet
                # another floor ship.  The replacement worker is unprimed, so
                # this attempt cannot resubmit to it -- the pass-level retry
                # re-runs through ensure() against the fresh lane.
                dispatcher.mark_broken(lane)
                if broken_error is None:
                    broken_error = LaneQuarantined(
                        f"lane {lane.name!r} hit the consecutive stale-reset cap "
                        f"({runtime.policy.max_stale_resets}) and was quarantined",
                        lane=lane.name,
                    )
                continue
            # Reset the lane's acks for these shards and re-ship from the
            # spool floor, which a cold resident can always bootstrap from.
            retry: list[tuple[int, tuple, tuple]] = []
            for shard_id, _, worklist in tasks:
                dispatcher.clear_ack(lane, token, shard_id)
                shipment = store.ship_plan(shard_id)
                self._record_transport(stats, shipment, None)
                # The re-ship supersedes the failed acked shipment: the hit
                # receipts must describe what the worker actually evaluates.
                shipped = None if shipment.full_ship else {u for u, _, _ in shipment.upserts}
                hit_facts[shard_id] = (worklist, shipped, False)
                retry.append((shard_id, shipment.handle(), worklist))
            try:
                retry_future = dispatcher.submit(
                    lane, _dispatch_worker_match, tuple((h, w) for _, h, w in retry)
                )
            except concurrent.futures.BrokenExecutor as exc:
                # submit() already respawned the lane.
                if broken_error is None:
                    broken_error = exc
                continue
            try:
                lane_results.append(
                    (lane, retry, dispatcher.result_within(lane, retry_future, label="re-ship"))
                )
            except StaleResidentShard as exc:
                # The floor re-ship itself failed (e.g. the freshly written
                # spool was corrupted again).  Repair what can be repaired
                # and fail the attempt; the pass-level retry starts clean.
                if isinstance(exc, CorruptShardShipment):
                    store.invalidate_floor(exc.shard_id)
                runtime.record_stale(lane.name)
                if broken_error is None:
                    broken_error = exc
            except (concurrent.futures.BrokenExecutor, TaskDeadlineExceeded) as exc:
                if broken_error is None:
                    broken_error = exc
        # Lanes that completed this attempt without needing a stale reset end
        # their consecutive-stale streak (the satellite cap counts *unbroken*
        # streaks across passes).
        stale_names = {lane.name for lane, _, _ in stale_lanes}
        for lane, _, _ in lane_results:
            if lane.name not in stale_names:
                runtime.clear_stale(lane.name)
        # Acks are recorded even when another lane broke: these workers
        # genuinely advanced their resident shards, and the session-level
        # retry then ships them empty acked deltas.
        for lane, _, (shard_rows, *_) in lane_results:
            for shard_id, _, applied in shard_rows:
                dispatcher.record_ack(lane, token, shard_id, applied)
        if broken_error is not None:
            raise broken_error

        worker_pairings = 0
        for lane, tasks, (shard_rows, pairings, fused_evals, precomp_hits) in lane_results:
            worker_pairings += pairings
            stats.fused_evals += fused_evals
            stats.precomp_hits += precomp_hits
            rows_by_shard = {shard_id: rows for shard_id, rows, _ in shard_rows}
            for shard_id, _, _ in tasks:
                for (position, _, _), row in zip(jobs_by_shard[shard_id], rows_by_shard[shard_id]):
                    evaluated[position] = row
                # Hit receipts describe only evaluations that actually ran,
                # against the shipment the worker actually applied.
                worklist, shipped, was_acked = hit_facts[shard_id]
                if shipped is not None:
                    stats.resident_hits += sum(
                        1 for user_id, _ in worklist if user_id not in shipped
                    )
                if was_acked:
                    stats.affinity_hits += len(worklist)
        group.counter.record_pairing(worker_pairings)
        # End of a successful pass: let the dispatcher act on the load
        # samples (no-op unless an AutoscalePolicy is configured).
        dispatcher.maybe_autoscale()
        return evaluated
