"""End-to-end secure alert system (the orchestration of Fig. 1 / Fig. 3).

:class:`SecureAlertSystem` wires the three parties together behind one
object so that examples, tests and benchmarks can exercise the full loop --
initialization, subscription, location reporting, alert declaration,
matching, notification -- with a couple of method calls, while still exposing
the cost accounting (pairing counts, initialization time) the evaluation
needs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.grid.alert_zone import AlertZone
from repro.grid.geometry import Point
from repro.grid.grid import Grid
from repro.protocol.entities import MobileUser, ServiceProvider, TrustedAuthority
from repro.protocol.matching import MatchingOptions
from repro.protocol.messages import AlertDeclaration, LocationUpdate, Notification, TokenBatch

__all__ = ["SystemInitStats", "SecureAlertSystem"]


@dataclass(frozen=True)
class SystemInitStats:
    """Timing and sizing facts about system initialization (Fig. 14).

    ``encoding_seconds`` covers building the prefix tree, indexes and coding
    tree; ``key_setup_seconds`` covers HVE key generation.  Initialization is
    a one-time cost incurred when the system is deployed.
    """

    n_cells: int
    reference_length: int
    encoding_seconds: float
    key_setup_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total one-time initialization cost."""
        return self.encoding_seconds + self.key_setup_seconds


class SecureAlertSystem:
    """A complete, in-memory deployment of the secure location-alert protocol.

    Parameters
    ----------
    grid:
        Spatial partitioning of the served area.
    probabilities:
        Public per-cell alert likelihoods (drive the encoding).
    scheme:
        Encoding scheme; defaults to the paper's Huffman scheme.
    prime_bits:
        HVE prime size; lower it in tests for speed.
    rng:
        Random source shared by key generation and encryption.
    matching:
        Options for the service provider's
        :class:`~repro.protocol.matching.MatchingEngine` (strategy, token
        order, workers, thread/process executor, incremental mode).  Defaults
        to the planned strategy with a single worker.
    backend:
        Crypto arithmetic backend name shared by all parties (``None``
        auto-selects; see :mod:`repro.crypto.backends`).

    Example
    -------
    >>> from repro.datasets.synthetic import make_synthetic_scenario
    >>> scenario = make_synthetic_scenario(rows=4, cols=4, seed=3)
    >>> system = SecureAlertSystem(scenario.grid, scenario.probabilities, prime_bits=32)
    >>> system.register_user("alice", scenario.grid.cell_center(5))
    >>> zone = AlertZone(cell_ids=(5, 6))
    >>> [n.user_id for n in system.declare_alert(zone, alert_id="demo")]
    ['alice']
    """

    def __init__(
        self,
        grid: Grid,
        probabilities: Sequence[float],
        scheme: Optional[EncodingScheme] = None,
        prime_bits: int = 64,
        rng: Optional[random.Random] = None,
        matching: Optional[MatchingOptions] = None,
        backend: Optional[str] = None,
    ):
        scheme = scheme or HuffmanEncodingScheme()
        rng = rng or random.Random()

        encoding_start = time.perf_counter()
        # The TrustedAuthority constructor builds the encoding and the keys;
        # time the two phases separately for the Fig. 14 benchmark by building
        # the encoding once here (cheap) purely for timing purposes.
        probe_encoding = scheme.build(list(probabilities))
        encoding_seconds = time.perf_counter() - encoding_start

        key_start = time.perf_counter()
        self.authority = TrustedAuthority(
            grid=grid,
            probabilities=probabilities,
            scheme=scheme,
            prime_bits=prime_bits,
            rng=rng,
            backend=backend,
        )
        key_setup_seconds = time.perf_counter() - key_start

        self.grid = grid
        self.provider = ServiceProvider(self.authority.hve, matching=matching)
        self.users: dict[str, MobileUser] = {}
        #: Extra recipients of every uploaded location update, called after the
        #: provider stored it.  The session service registers its ciphertext
        #: store here so freshness-managed matching sees the same stream.
        self.update_sinks: list[Callable[[LocationUpdate], None]] = []
        self.init_stats = SystemInitStats(
            n_cells=grid.n_cells,
            reference_length=probe_encoding.reference_length,
            encoding_seconds=encoding_seconds,
            key_setup_seconds=key_setup_seconds,
        )

    # ------------------------------------------------------------------
    # Subscription and location reporting
    # ------------------------------------------------------------------
    def register_user(self, user_id: str, location: Point) -> MobileUser:
        """Subscribe a new user and upload their first encrypted location."""
        if user_id in self.users:
            raise ValueError(f"user id {user_id!r} already registered")
        user = MobileUser(user_id=user_id, location=location)
        self.users[user_id] = user
        self._upload(user)
        return user

    def move_user(self, user_id: str, location: Point) -> LocationUpdate:
        """Move a user and upload a fresh encrypted location report."""
        user = self._user(user_id)
        user.move_to(location)
        return self._upload(user)

    def reattach_user(self, user_id: str, location: Point, sequence_number: int = 0) -> MobileUser:
        """Recreate a user object without uploading (e.g. after a state restore).

        The provider's ciphertext store may already know this pseudonym from a
        restored snapshot; ``sequence_number`` seeds the user's next report so
        it supersedes the stored one instead of being dropped as stale.
        """
        user = MobileUser(user_id=user_id, location=location, _sequence=sequence_number)
        self.users[user_id] = user
        return user

    def _upload(self, user: MobileUser) -> LocationUpdate:
        update = user.report_location(
            grid=self.grid,
            encoding=self.authority.public_encoding(),
            hve=self.authority.hve,
            public_key=self.authority.public_key,
        )
        self.provider.receive_update(update)
        for sink in self.update_sinks:
            sink(update)
        return update

    def _user(self, user_id: str) -> MobileUser:
        if user_id not in self.users:
            raise KeyError(f"unknown user id {user_id!r}")
        return self.users[user_id]

    # ------------------------------------------------------------------
    # Alerts
    # ------------------------------------------------------------------
    def declare_alert(self, zone: AlertZone, alert_id: str, description: str = "") -> list[Notification]:
        """Run the full alert path: minimize, tokenize, match, notify."""
        declaration = AlertDeclaration(zone=zone, alert_id=alert_id, description=description)
        batch = self.authority.issue_tokens(declaration)
        return self.provider.process_alert(batch, description=description)

    def declare_alerts(self, declarations: Sequence[AlertDeclaration]) -> list[Notification]:
        """Declare several alerts and match them in one planned pass.

        The provider's matching engine builds a single token plan for the
        whole batch, so patterns shared between overlapping zones are
        evaluated once per ciphertext.
        """
        batches = [self.authority.issue_tokens(declaration) for declaration in declarations]
        descriptions = {d.alert_id: d.description for d in declarations if d.description}
        return self.provider.process_alerts(batches, descriptions=descriptions)

    def issue_token_batch(self, zone: AlertZone, alert_id: str) -> TokenBatch:
        """Only mint the tokens (used by benchmarks that time matching separately)."""
        declaration = AlertDeclaration(zone=zone, alert_id=alert_id)
        return self.authority.issue_tokens(declaration)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pairing_count(self) -> int:
        """Total pairings evaluated by the system so far."""
        return self.authority.group.counter.total

    def users_in_zone(self, zone: AlertZone) -> list[str]:
        """Ground truth: users whose *actual* cell lies in the zone.

        Used by tests and examples to check that the encrypted matching
        produced exactly the right notifications.
        """
        return sorted(
            user_id
            for user_id, user in self.users.items()
            if user.current_cell(self.grid) in zone
        )
