"""The location-based alert protocol: users, trusted authority and service provider.

This package implements the system model of Section 2.2 (Fig. 1) and the
variable-length workflow of Fig. 3:

* :mod:`repro.protocol.messages` -- the payloads exchanged between parties
  (location updates, token batches, notifications).
* :mod:`repro.protocol.entities` -- the three parties: mobile users encrypt
  their grid index under the HVE public key; the trusted authority owns the
  secret key, builds the encoding from public per-cell likelihoods and issues
  minimized tokens; the service provider stores ciphertexts and performs the
  matching.
* :mod:`repro.protocol.alert_system` -- :class:`SecureAlertSystem`, the
  end-to-end orchestration used by the examples and the Fig. 14 benchmark.
* :mod:`repro.protocol.matching` -- the :class:`MatchingEngine` the service
  provider evaluates tokens through: planned batched evaluation with
  deduplication, cheapest-first ordering, a fused exponent-arithmetic fast
  path, optional worker threads and incremental re-evaluation.
* :mod:`repro.protocol.store` -- the provider's persistent ciphertext store
  with freshness management and batch alert processing.
* :mod:`repro.protocol.shards` -- the sharded store variant: reports hashed
  into versioned shards whose wire payloads ship to worker processes once
  and stay resident, so warm passes send only version handles and deltas.
"""

from repro.protocol.alert_system import SecureAlertSystem, SystemInitStats
from repro.protocol.entities import MobileUser, ServiceProvider, TrustedAuthority
from repro.protocol.matching import (
    MatchCandidate,
    MatchingEngine,
    MatchingOptions,
    PlannedToken,
    TokenPlan,
)
from repro.protocol.messages import AlertDeclaration, LocationUpdate, Notification, TokenBatch
from repro.protocol.shards import ResidentShard, ShardedCiphertextStore, ShardShipment
from repro.protocol.simulation import AlertServiceSimulation, SimulationConfig, SimulationResult
from repro.protocol.store import BatchMatcher, CiphertextStore, StoredReport

__all__ = [
    "AlertServiceSimulation",
    "SimulationConfig",
    "SimulationResult",

    "MatchCandidate",
    "MatchingEngine",
    "MatchingOptions",
    "PlannedToken",
    "TokenPlan",

    "BatchMatcher",
    "CiphertextStore",
    "StoredReport",
    "ResidentShard",
    "ShardedCiphertextStore",
    "ShardShipment",

    "SecureAlertSystem",
    "SystemInitStats",
    "MobileUser",
    "ServiceProvider",
    "TrustedAuthority",
    "AlertDeclaration",
    "LocationUpdate",
    "Notification",
    "TokenBatch",
]
