"""The location-based alert protocol: users, trusted authority and service provider.

This package implements the system model of Section 2.2 (Fig. 1) and the
variable-length workflow of Fig. 3:

* :mod:`repro.protocol.messages` -- the payloads exchanged between parties
  (location updates, token batches, notifications).
* :mod:`repro.protocol.entities` -- the three parties: mobile users encrypt
  their grid index under the HVE public key; the trusted authority owns the
  secret key, builds the encoding from public per-cell likelihoods and issues
  minimized tokens; the service provider stores ciphertexts and performs the
  matching.
* :mod:`repro.protocol.alert_system` -- :class:`SecureAlertSystem`, the
  end-to-end orchestration used by the examples and the Fig. 14 benchmark.
"""

from repro.protocol.alert_system import SecureAlertSystem, SystemInitStats
from repro.protocol.entities import MobileUser, ServiceProvider, TrustedAuthority
from repro.protocol.messages import AlertDeclaration, LocationUpdate, Notification, TokenBatch
from repro.protocol.simulation import AlertServiceSimulation, SimulationConfig, SimulationResult

__all__ = [
    "AlertServiceSimulation",
    "SimulationConfig",
    "SimulationResult",

    "SecureAlertSystem",
    "SystemInitStats",
    "MobileUser",
    "ServiceProvider",
    "TrustedAuthority",
    "AlertDeclaration",
    "LocationUpdate",
    "Notification",
    "TokenBatch",
]
