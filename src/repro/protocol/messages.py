"""Messages exchanged by the protocol parties (Fig. 1 / Fig. 3).

Four payload kinds flow through the system:

* :class:`LocationUpdate` -- a user's encrypted location, uploaded to the
  service provider.  It carries *only* the ciphertext and the sender's
  pseudonym: the grid index itself never leaves the device in clear.
* :class:`AlertDeclaration` -- the plaintext description of an event handed to
  the trusted authority (e.g. by a health agency): the affected cells plus a
  label.  This is the only place cleartext spatial information appears, and it
  concerns the *event*, never a user.
* :class:`TokenBatch` -- the minimized HVE search tokens the trusted authority
  sends to the service provider for one alert.
* :class:`Notification` -- what the service provider sends back to a matched
  user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.crypto.hve import HVECiphertext, HVEToken
from repro.grid.alert_zone import AlertZone

__all__ = ["LocationUpdate", "AlertDeclaration", "TokenBatch", "Notification"]


@dataclass(frozen=True)
class LocationUpdate:
    """An encrypted location report from one user.

    ``sequence_number`` lets the provider keep only the latest update per
    pseudonym (users report periodically as they move).
    """

    user_id: str
    ciphertext: HVECiphertext
    sequence_number: int = 0

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if self.sequence_number < 0:
            raise ValueError("sequence_number must be non-negative")

    def to_wire(self) -> dict:
        """JSON-compatible form; the ciphertext uses the crypto wire encoding."""
        from repro.crypto.serialization import serialize_ciphertext

        return {
            "user_id": self.user_id,
            "sequence_number": self.sequence_number,
            "ciphertext": serialize_ciphertext(self.ciphertext),
        }

    @classmethod
    def from_wire(cls, payload: dict, group) -> "LocationUpdate":
        """Rebuild from :meth:`to_wire`; ``group`` anchors the ciphertext."""
        from repro.crypto.serialization import deserialize_ciphertext

        return cls(
            user_id=payload["user_id"],
            ciphertext=deserialize_ciphertext(group, payload["ciphertext"]),
            sequence_number=int(payload["sequence_number"]),
        )


@dataclass(frozen=True)
class AlertDeclaration:
    """A plaintext alert-zone declaration submitted to the trusted authority."""

    zone: AlertZone
    alert_id: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.alert_id:
            raise ValueError("alert_id must be non-empty")


@dataclass(frozen=True)
class TokenBatch:
    """The minimized search tokens for one alert, sent by the TA to the SP."""

    alert_id: str
    tokens: tuple[HVEToken, ...]

    def __post_init__(self) -> None:
        if not self.alert_id:
            raise ValueError("alert_id must be non-empty")
        if not self.tokens:
            raise ValueError("a token batch must contain at least one token")

    @property
    def total_non_star_bits(self) -> int:
        """Total non-star symbols over all tokens (the cost driver)."""
        return sum(token.non_star_count for token in self.tokens)

    @property
    def pairing_cost_per_ciphertext(self) -> int:
        """Pairings needed to evaluate the whole batch against one ciphertext."""
        return sum(token.pairing_cost for token in self.tokens)


@dataclass(frozen=True)
class Notification:
    """Delivered to a user whose latest ciphertext matched an alert's tokens."""

    user_id: str
    alert_id: str
    description: str = ""

    def to_wire(self) -> dict:
        """JSON-compatible form (no secret material: ids and label only)."""
        return {
            "user_id": self.user_id,
            "alert_id": self.alert_id,
            "description": self.description,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "Notification":
        return cls(
            user_id=payload["user_id"],
            alert_id=payload["alert_id"],
            description=payload.get("description", ""),
        )
