"""The three protocol parties: mobile users, trusted authority, service provider.

Responsibilities follow Section 2.2 of the paper:

* **Mobile users** know their own location, the public grid encoding and the
  HVE public key.  They map their position to a grid cell, look up the cell's
  padded index and encrypt it; only the ciphertext leaves the device.
* The **Trusted Authority (TA)** owns the HVE secret key.  It builds the grid
  encoding from *public* per-cell alert likelihoods (no user data is
  involved), publishes the encoding and public key, and when an alert zone is
  declared it minimizes the zone into token patterns and derives HVE tokens.
* The **Service Provider (SP)** stores the users' latest ciphertexts and, for
  every declared alert, evaluates each token against each stored ciphertext.
  It learns only the boolean match outcome, notifies matched users and keeps
  pairing-count statistics (the paper's cost metric).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.crypto.counting import PairingCounter
from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVE, HVEKeyPair, HVEPublicKey, HVESecretKey, HVEToken
from repro.encoding.base import EncodingScheme, GridEncoding
from repro.grid.alert_zone import AlertZone
from repro.grid.geometry import Point
from repro.grid.grid import Grid
from repro.protocol.matching import MatchCandidate, MatchingEngine, MatchingOptions
from repro.protocol.messages import AlertDeclaration, LocationUpdate, Notification, TokenBatch

__all__ = ["MobileUser", "TrustedAuthority", "ServiceProvider"]


class TrustedAuthority:
    """Holder of the HVE secret key; builds the encoding and issues tokens.

    Parameters
    ----------
    grid:
        The spatial partitioning served by the system.
    probabilities:
        Public per-cell alert likelihoods driving the encoding (site
        popularity, historical incident rates, ...).  No user data.
    scheme:
        The encoding scheme to deploy (Huffman, balanced, fixed, SGO, ...).
    prime_bits:
        Size of each prime factor of the HVE group order.
    rng:
        Random source for key material; seed for reproducible experiments.
    backend:
        Crypto arithmetic backend name (``None`` auto-selects; see
        :mod:`repro.crypto.backends`).
    """

    def __init__(
        self,
        grid: Grid,
        probabilities: Sequence[float],
        scheme: EncodingScheme,
        prime_bits: int = 128,
        rng: Optional[random.Random] = None,
        backend: Optional[str] = None,
    ):
        grid.validate_probabilities(probabilities)
        self.grid = grid
        self.probabilities = list(probabilities)
        self.scheme = scheme
        self._rng = rng or random.Random()

        # Build the encoding first: its reference length is the HVE width.
        self.encoding: GridEncoding = scheme.build(self.probabilities)
        self.hve = HVE(
            width=self.encoding.reference_length,
            prime_bits=prime_bits,
            rng=self._rng,
            backend=backend,
        )
        self._keys: HVEKeyPair = self.hve.setup()

    # ------------------------------------------------------------------
    # Published material
    # ------------------------------------------------------------------
    @property
    def public_key(self) -> HVEPublicKey:
        """The HVE public key distributed to all subscribed users."""
        return self._keys.public

    @property
    def group(self) -> BilinearGroup:
        """The bilinear group shared by all parties."""
        return self.hve.group

    def public_encoding(self) -> GridEncoding:
        """The published grid encoding (cell -> padded index).

        The encoding is public information: it is derived from public
        likelihood scores only, so distributing it leaks nothing about users
        (Section 6).
        """
        return self.encoding

    # ------------------------------------------------------------------
    # Token issuance
    # ------------------------------------------------------------------
    def _secret_key(self) -> HVESecretKey:
        return self._keys.secret

    def token_patterns_for_zone(self, zone: AlertZone) -> list[str]:
        """Minimized token patterns for an alert zone (before encryption)."""
        return self.encoding.token_patterns(list(zone.cell_ids))

    def issue_tokens(self, declaration: AlertDeclaration) -> TokenBatch:
        """Minimize the declared zone and derive the HVE search tokens."""
        patterns = self.token_patterns_for_zone(declaration.zone)
        if not patterns:
            raise ValueError("alert declaration produced no token patterns")
        tokens = tuple(self.hve.generate_token(self._secret_key(), pattern) for pattern in patterns)
        return TokenBatch(alert_id=declaration.alert_id, tokens=tokens)


@dataclass
class MobileUser:
    """A subscribed mobile user.

    The user holds only public material (grid, encoding, public key) plus its
    own location; :meth:`report_location` produces the encrypted update the
    service provider stores.
    """

    user_id: str
    location: Point
    _sequence: int = field(default=0, repr=False)

    def current_cell(self, grid: Grid) -> int:
        """The id of the grid cell currently enclosing the user."""
        return grid.cell_at(self.location).cell_id

    def move_to(self, location: Point) -> None:
        """Update the user's physical position (a new report must follow)."""
        self.location = location

    def report_location(
        self,
        grid: Grid,
        encoding: GridEncoding,
        hve: HVE,
        public_key: HVEPublicKey,
    ) -> LocationUpdate:
        """Encrypt the user's current cell index and produce a location update."""
        cell_id = self.current_cell(grid)
        index = encoding.index_of(cell_id)
        ciphertext = hve.encrypt(public_key, index)
        update = LocationUpdate(user_id=self.user_id, ciphertext=ciphertext, sequence_number=self._sequence)
        self._sequence += 1
        return update


class ServiceProvider:
    """Stores encrypted location updates and evaluates alert tokens on them.

    The provider never sees a plaintext location or the secret key; all it can
    compute is, per (ciphertext, token) pair, whether the hidden index
    satisfies the token's pattern.

    All matching is delegated to a :class:`~repro.protocol.matching.MatchingEngine`
    (the planned strategy by default); pass ``matching=MatchingOptions(...)``
    to select the naive parity path, a token order, worker threads or
    incremental re-evaluation, or inject a pre-built ``engine``.
    """

    def __init__(
        self,
        hve: HVE,
        engine: Optional[MatchingEngine] = None,
        matching: Optional[MatchingOptions] = None,
    ):
        if engine is not None and matching is not None:
            raise ValueError("pass either a pre-built engine or matching options, not both")
        self.hve = hve
        self.engine = engine if engine is not None else MatchingEngine(hve, matching)
        self._latest_updates: dict[str, LocationUpdate] = {}
        self._notifications: list[Notification] = []

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def receive_update(self, update: LocationUpdate) -> None:
        """Store a user's update, keeping only the freshest per pseudonym."""
        existing = self._latest_updates.get(update.user_id)
        if existing is None or update.sequence_number >= existing.sequence_number:
            self._latest_updates[update.user_id] = update

    @property
    def subscriber_count(self) -> int:
        """Number of users with a stored ciphertext."""
        return len(self._latest_updates)

    def subscribers(self) -> list[str]:
        """Pseudonyms of all users with a stored ciphertext."""
        return sorted(self._latest_updates)

    def latest_update(self, user_id: str) -> LocationUpdate:
        """The freshest stored update of one user (KeyError if absent).

        Used by the session service to back-fill its ciphertext store when it
        adopts an already-running deployment.
        """
        return self._latest_updates[user_id]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    @property
    def pairing_counter(self) -> PairingCounter:
        """The pairing counter of the underlying group (cost accounting)."""
        return self.hve.group.counter

    def process_alert(self, batch: TokenBatch, description: str = "") -> list[Notification]:
        """Match a token batch against every stored ciphertext.

        Returns the notifications for matched users (also retained in the
        provider's notification log).  Matching short-circuits per user on the
        first matching token.
        """
        descriptions = {batch.alert_id: description} if description else None
        return self.process_alerts([batch], descriptions=descriptions)

    def process_alerts(
        self,
        batches: Sequence[TokenBatch],
        descriptions: Optional[dict[str, str]] = None,
    ) -> list[Notification]:
        """Match several alerts in one planned pass over the stored ciphertexts.

        Processing alerts together lets the engine deduplicate shared token
        patterns across them; per alert, semantics are the same as
        :meth:`process_alert`.
        """
        candidates = [
            MatchCandidate(
                user_id=user_id,
                ciphertext=self._latest_updates[user_id].ciphertext,
                sequence_number=self._latest_updates[user_id].sequence_number,
            )
            for user_id in self.subscribers()
        ]
        notifications = self.engine.match(batches, candidates, descriptions=descriptions)
        self._notifications.extend(notifications)
        return notifications

    def notification_log(self) -> list[Notification]:
        """All notifications emitted so far (most recent last)."""
        return list(self._notifications)
