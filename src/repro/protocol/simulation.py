"""Population-scale simulation of the alert service over time.

The paper evaluates per-alert matching cost; a deployed service additionally
faces a *stream* of location updates and alerts.  This module provides a small
discrete-time simulator used by the examples and the load benchmarks:

* a population of users moving over the grid with a lazy random-waypoint model
  biased towards popular cells (people spend more time at popular places);
* periodic encrypted location reports;
* alert events arriving as a Poisson process, each producing a
  probability-triggered zone of a configurable radius;
* per-step statistics: updates uploaded, tokens issued, pairings spent,
  notifications delivered.

The simulator runs entirely on the real protocol stack (HVE included), so its
numbers are end-to-end measurements, not estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.encoding.base import EncodingScheme
from repro.grid.geometry import Point
from repro.grid.workloads import WorkloadGenerator
from repro.probability.poisson import poisson_sample
from repro.service.config import ServiceConfig
from repro.service.requests import PublishZone
from repro.service.service import AlertService

__all__ = ["SimulationConfig", "StepStats", "SimulationResult", "AlertServiceSimulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Tunables of a simulation run."""

    num_users: int = 50
    move_probability: float = 0.3
    report_every_steps: int = 1
    alert_rate_per_step: float = 0.5
    alert_radius: float = 100.0
    prime_bits: int = 48
    seed: int = 0
    matching_strategy: str = "planned"
    workers: int = 1
    executor: str = "thread"
    crypto_backend: Optional[str] = None
    #: 0 keeps the unsharded store; > 0 deploys the sharded store (see
    #: :class:`~repro.protocol.shards.ShardedCiphertextStore`).
    shards: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.shards < 0:
            raise ValueError("shards must be non-negative (0 keeps the unsharded store)")
        if not 0.0 <= self.move_probability <= 1.0:
            raise ValueError("move_probability must be in [0, 1]")
        if self.report_every_steps < 1:
            raise ValueError("report_every_steps must be at least 1")
        if self.alert_rate_per_step < 0:
            raise ValueError("alert_rate_per_step must be non-negative")
        if self.alert_radius < 0:
            raise ValueError("alert_radius must be non-negative")


@dataclass(frozen=True)
class StepStats:
    """What happened during one simulated time step."""

    step: int
    location_reports: int
    alerts: int
    tokens_issued: int
    notifications: int
    pairings_spent: int


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated outcome of a simulation run."""

    steps: tuple[StepStats, ...]

    @property
    def total_notifications(self) -> int:
        """Notifications delivered over the whole run."""
        return sum(s.notifications for s in self.steps)

    @property
    def total_alerts(self) -> int:
        """Alert events over the whole run."""
        return sum(s.alerts for s in self.steps)

    @property
    def total_pairings(self) -> int:
        """Bilinear pairings evaluated over the whole run."""
        return sum(s.pairings_spent for s in self.steps)

    @property
    def total_reports(self) -> int:
        """Encrypted location reports uploaded over the whole run."""
        return sum(s.location_reports for s in self.steps)

    def as_rows(self) -> list[dict[str, object]]:
        """Per-step rows for report printing."""
        return [
            {
                "step": s.step,
                "reports": s.location_reports,
                "alerts": s.alerts,
                "tokens": s.tokens_issued,
                "notifications": s.notifications,
                "pairings": s.pairings_spent,
            }
            for s in self.steps
        ]


class AlertServiceSimulation:
    """Drives an :class:`~repro.service.service.AlertService` session with
    moving users and random alerts.

    A thin adapter over the session API: every simulated alert is a one-shot
    ``PublishZone`` request.  The legacy surface is preserved -- ``system``
    still exposes the underlying
    :class:`~repro.protocol.alert_system.SecureAlertSystem`.  Pass
    ``service_config`` to tune session behaviour beyond what
    :class:`SimulationConfig` carries (persistent pool, incremental
    re-evaluation, report freshness); its crypto/matching fields must then
    agree with the simulation config, which otherwise provides them via
    :meth:`ServiceConfig.from_simulation
    <repro.service.config.ServiceConfig.from_simulation>`.
    """

    def __init__(
        self,
        grid,
        probabilities: Sequence[float],
        scheme: Optional[EncodingScheme] = None,
        config: Optional[SimulationConfig] = None,
        service_config: Optional[ServiceConfig] = None,
    ):
        self.config = config or SimulationConfig()
        self.rng = random.Random(self.config.seed)
        self.service = AlertService(
            grid,
            probabilities,
            config=service_config or ServiceConfig.from_simulation(self.config),
            scheme=scheme,
            rng=random.Random(self.config.seed + 1),
        )
        self.system = self.service.system
        self.grid = grid
        self.probabilities = list(probabilities)
        self._zone_generator = WorkloadGenerator(grid, probabilities, rng=random.Random(self.config.seed + 2))
        self._alert_counter = 0
        self._populate_users()

    # ------------------------------------------------------------------
    # Population handling
    # ------------------------------------------------------------------
    def _popular_cell(self) -> int:
        weights = [p + 1e-6 for p in self.probabilities]
        return self.rng.choices(range(self.grid.n_cells), weights=weights, k=1)[0]

    def _random_point_in_cell(self, cell_id: int) -> Point:
        cell = self.grid.cell(cell_id)
        return Point(
            self.rng.uniform(cell.box.min_x, cell.box.max_x),
            self.rng.uniform(cell.box.min_y, cell.box.max_y),
        )

    def _populate_users(self) -> None:
        for i in range(self.config.num_users):
            cell = self._popular_cell()
            self.system.register_user(f"sim-user-{i:04d}", self._random_point_in_cell(cell))

    def _move_users(self) -> int:
        """Move a fraction of users; returns the number of fresh reports uploaded."""
        moved = 0
        for user_id in list(self.system.users):
            if self.rng.random() < self.config.move_probability:
                destination = self._popular_cell()
                self.system.move_user(user_id, self._random_point_in_cell(destination))
                moved += 1
        return moved

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def run(self, steps: int) -> SimulationResult:
        """Run the simulation for ``steps`` time steps."""
        if steps < 1:
            raise ValueError("steps must be at least 1")
        collected: list[StepStats] = []
        for step in range(steps):
            reports = self._move_users() if step % self.config.report_every_steps == 0 else 0

            alerts = poisson_sample(self.config.alert_rate_per_step, self.rng)
            tokens_issued = 0
            notifications = 0
            pairings_before = self.system.pairing_count
            for _ in range(alerts):
                zone = self._zone_generator.triggered_radius_workload(self.config.alert_radius, 1).zones[0]
                self._alert_counter += 1
                report = self.service.publish_zone(
                    PublishZone(
                        alert_id=f"sim-alert-{self._alert_counter}",
                        zone=zone,
                        standing=False,
                    )
                )
                tokens_issued += report.tokens_evaluated
                notifications += len(report.notifications)
            collected.append(
                StepStats(
                    step=step,
                    location_reports=reports,
                    alerts=alerts,
                    tokens_issued=tokens_issued,
                    notifications=notifications,
                    pairings_spent=self.system.pairing_count - pairings_before,
                )
            )
        return SimulationResult(steps=tuple(collected))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """End the underlying session (shuts down any persistent pool)."""
        self.service.close()

    def __enter__(self) -> "AlertServiceSimulation":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
