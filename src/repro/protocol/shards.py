"""Sharded ciphertext storage with versioned, worker-resident wire payloads.

PR 2's process executor made matching scale with cores, but every pass
re-serialized every fresh ciphertext into the executor call: with ``U`` stored
reports the per-pass cost carried an ``O(U)`` serialization term that no
amount of pooling amortised.  This module removes that term by making the
store *shard-structured*:

* reports are hashed into ``N`` **shards** by pseudonym
  (:func:`shard_of_user`), so a report's shard never changes across moves,
  restores or re-subscriptions;
* each shard carries a monotonically increasing **version**, bumped by every
  mutation that can change matching outcomes (a stored ingest, a purge);
* each shard can produce a :class:`ShardShipment`: a **full ship** (the
  shard's complete wire payload, written once to an on-disk *spool file* that
  any worker process can load), a **delta ship** (only the records ingested /
  users purged since the last full ship), or -- when the caller supplies the
  target worker's acked version -- an **acked delta** carrying exactly the
  changes that worker has not yet applied (see
  :class:`repro.service.dispatch.AffinityDispatcher`).  Deltas are
  *state-based* -- upserts carry the record's current wire form -- so applying
  a delta is idempotent and safe from any resident version at or above the
  shipment's ``delta_base``;
* worker processes keep a :class:`ResidentShard` per (store, shard): the
  first task for a shard loads the spool file, later tasks apply deltas, and
  a warm pass with no changes ships nothing but ``(shard_id, version)``
  handles and per-user worklists.

Serialization is therefore paid *per mutation*, not per pass: a report is
wired once when it first ships (the wire form is cached on the changelog
entry), and an unchanged store ships zero ciphertext bytes however many
passes evaluate it.  The :class:`~repro.protocol.matching.MatchingEngine`
builds its shard-targeted process path on this module, and its per-zone dirty
index uses :meth:`ShardedCiphertextStore.shard_versions` as the frontier
clock.

The store subclasses :class:`~repro.protocol.store.CiphertextStore` and keeps
its persistence format: ``to_payload``/``save``/``load`` payloads add only a
``"shards"`` field, and a payload written by either class loads in the other.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import weakref
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVECiphertext
from repro.crypto.serialization import ciphertext_to_wire, wire_size_bytes, wire_to_ciphertext
from repro.durability import atomic_write_bytes, checksum_bytes
from repro.protocol.store import CiphertextStore, StoredReport

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "shard_of_user",
    "wire_size_bytes",
    "ShardShipment",
    "ShardedCiphertextStore",
    "ResidentShard",
    "StaleResidentShard",
    "CorruptShardShipment",
]


class StaleResidentShard(RuntimeError):
    """A worker's resident shard cannot anchor the delta it was shipped.

    Raised by :meth:`ResidentShard.sync` when the shipment's ``delta_base``
    lies above both the resident version and the spool file's version -- the
    records between the spool and the base are simply not present anywhere in
    the shipment.  The dispatcher reacts by resetting the worker's acked
    versions and re-shipping from the spool floor, which is always
    sufficient.  Carries only a message string, so it pickles cleanly across
    the process boundary.
    """


class CorruptShardShipment(StaleResidentShard):
    """A spool file failed its integrity check (or would not even unpickle).

    Subclasses :class:`StaleResidentShard` because the *recovery contract* is
    the same -- reset the worker's acks and reship -- with one addition: the
    floor file itself is bad, so the parent must invalidate the shard's floor
    (:meth:`ShardedCiphertextStore.invalidate_floor`) and let the reship
    rewrite the spool rather than point the worker at the same corrupt bytes
    again.  ``shard_id`` identifies the shard to invalidate; ``__reduce__``
    keeps it across the process boundary (worker exceptions are pickled back
    to the parent).
    """

    def __init__(self, message: str, shard_id: Optional[int] = None):
        super().__init__(message)
        self.shard_id = shard_id

    def __reduce__(self):
        return (CorruptShardShipment, (self.args[0] if self.args else "", self.shard_id))

#: Shards used when a payload predates the ``"shards"`` field or no explicit
#: count is configured.  Small enough that tiny deployments are not scattered,
#: large enough that a process pool of typical width has work per worker.
DEFAULT_SHARD_COUNT = 8


def shard_of_user(user_id: str, shard_count: int) -> int:
    """The shard owning ``user_id``, stable across processes and sessions.

    Uses CRC32 rather than :func:`hash` because the latter is salted per
    interpreter: worker processes and restored sessions must agree on
    membership without coordination.
    """
    return zlib.crc32(user_id.encode("utf-8")) % shard_count


@dataclass(frozen=True)
class ShardShipment:
    """Everything a worker needs to bring one shard up to ``version``.

    ``store_token`` identifies the owning store (workers of one pool may serve
    several stores across a test session); ``spool_path`` is the on-disk full
    payload at ``floor_version``.  ``upserts`` / ``removals`` carry the
    state-based delta ``delta_base -> version``: ``delta_base`` is the floor
    for the classic PR 4 delta, or the worker's *acked* version when the
    dispatcher knows exactly what the target worker has already applied (an
    acked delta carries strictly no records the worker holds).  ``full_ship``
    is True when the floor file was (re)written by this shipment.
    ``bytes_shipped`` counts the wire bytes this shipment serialized or put on
    the wire (the full payload for a full ship, the upserts for a delta).
    """

    store_token: str
    shard_id: int
    version: int
    floor_version: int
    spool_path: str
    #: The resident version this shipment's delta applies on top of: the
    #: floor for a full/floor ship, the worker's acked version for an acked
    #: delta.  A worker below this (after a spool bootstrap) cannot be
    #: brought current by the shipment and must signal
    #: :class:`StaleResidentShard`.
    delta_base: int
    upserts: tuple[tuple[str, int, Any], ...]
    removals: tuple[str, ...]
    full_ship: bool
    bytes_shipped: int
    #: Records this shipment put on the wire: the whole shard for a full
    #: ship, the upserts for a delta.
    record_count: int
    #: CRC32 of the spool file's bytes as written.  Workers verify it before
    #: unpickling, so a spool corrupted on disk surfaces as a
    #: :class:`CorruptShardShipment` instead of garbage resident state.
    #: ``None`` for shipments whose spool predates checksumming.
    spool_crc: Optional[int] = None

    def handle(self) -> tuple:
        """The picklable task form shipped to worker processes."""
        return (
            self.store_token,
            self.shard_id,
            self.version,
            self.floor_version,
            self.spool_path,
            self.delta_base,
            self.upserts,
            self.removals,
            self.spool_crc,
        )


@dataclass
class _ChangeEntry:
    """Latest pending change of one user in a shard since the floor.

    ``sequence_number is None`` marks a removal.  ``wire`` caches the record's
    serialized form so re-shipping the same delta on later passes costs no
    serializer calls (the empty-delta / warm-pass guarantee rests on this).
    """

    version: int
    sequence_number: Optional[int]
    wire: Any = None
    wire_bytes: int = 0


class ShardedCiphertextStore(CiphertextStore):
    """A :class:`CiphertextStore` whose reports are hashed into versioned shards.

    Parameters
    ----------
    shards:
        Number of shards.  Shard membership is a pure function of the
        pseudonym, so the count is fixed for the lifetime of the store (and
        its snapshots).  Raise it towards (or beyond) the process-executor
        worker count so every worker has at least one shard-task per pass.
    max_age_seconds:
        As in the base class.
    serializer / deserializer:
        The record wire codec, defaulting to
        :func:`~repro.crypto.serialization.ciphertext_to_wire` /
        :func:`~repro.crypto.serialization.wire_to_ciphertext`.  Injectable so
        tests can count serializer calls (the empty-delta guarantee) or stub
        the codec entirely.
    spool_dir:
        Directory for shard spool files; defaults to a private temp directory
        removed when the store is garbage-collected or :meth:`close`\\ d.
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARD_COUNT,
        max_age_seconds: Optional[float] = None,
        serializer: Optional[Callable[[HVECiphertext], Any]] = None,
        deserializer: Optional[Callable[[BilinearGroup, Any], HVECiphertext]] = None,
        spool_dir: Optional[str] = None,
    ):
        super().__init__(max_age_seconds=max_age_seconds)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shard_count = shards
        self.serializer = serializer if serializer is not None else ciphertext_to_wire
        self.deserializer = deserializer if deserializer is not None else wire_to_ciphertext
        self._versions: list[int] = [0] * shards
        # Per-shard membership index: kept in lockstep with ``_reports`` so
        # shipping never rescans (and re-hashes) the whole store.
        self._members: list[set[str]] = [set() for _ in range(shards)]
        # Per shard: user_id -> latest pending change since the floor file.
        self._changelog: list[dict[str, _ChangeEntry]] = [dict() for _ in range(shards)]
        # Consecutive ships of the same non-empty delta: after a few, the
        # floor advances so steady-trickle shards stop re-shipping it.
        self._repeat_ships: list[int] = [0] * shards
        self._last_shipped: list[Optional[tuple[int, int]]] = [None] * shards
        self._floor_versions: list[Optional[int]] = [None] * shards
        self._floor_paths: list[Optional[str]] = [None] * shards
        self._floor_crcs: list[Optional[int]] = [None] * shards
        self._spool_dir = spool_dir
        self._finalizer: Optional[weakref.finalize] = None
        #: Lifetime counters surfaced by the service metrics and asserted by
        #: the shard-scaling benchmark.  ``acked_ships`` counts deltas built
        #: against a worker's acked version (the affinity dispatcher's warm
        #: path) as opposed to floor-based ``delta_ships``.
        self.full_ships = 0
        self.delta_ships = 0
        self.acked_ships = 0
        self.serialized_records = 0

    # ------------------------------------------------------------------
    # Shard structure
    # ------------------------------------------------------------------
    def shard_of(self, user_id: str) -> int:
        """The shard owning ``user_id`` (stable; see :func:`shard_of_user`)."""
        return shard_of_user(user_id, self.shard_count)

    def shard_versions(self) -> tuple[int, ...]:
        """The current version of every shard -- the dirty-index frontier clock."""
        return tuple(self._versions)

    def shard_version(self, shard_id: int) -> int:
        """The current version of one shard."""
        return self._versions[shard_id]

    def shard_users(self, shard_id: int) -> list[str]:
        """The stored pseudonyms living in ``shard_id``, sorted."""
        return sorted(self._members[shard_id])

    @property
    def store_token(self) -> str:
        """Identity of this store for worker-resident caches (the spool dir)."""
        return self._ensure_spool_dir()

    # ------------------------------------------------------------------
    # Mutations (version bookkeeping on top of the base class)
    # ------------------------------------------------------------------
    def ingest(self, update, received_at: float) -> bool:
        stored = super().ingest(update, received_at)
        if stored:
            self._record_upsert(update.user_id, update.sequence_number)
        return stored

    def purge_expired(self, now: float) -> list[str]:
        """Drop expired reports, advancing the owning shards' versions.

        Returns the purged pseudonyms (the engine's targeted pass uses the
        list to drop their remembered outcomes).  Scans the store exactly
        once, unlike ``stale_users`` + ``purge_stale`` back to back.
        """
        stale = self.stale_users(now)
        for user_id in stale:
            del self._reports[user_id]
            self._record_removal(user_id)
        return stale

    def purge_stale(self, now: float) -> int:
        return len(self.purge_expired(now))

    def _record_upsert(self, user_id: str, sequence_number: int) -> None:
        shard = self.shard_of(user_id)
        self._versions[shard] += 1
        self._members[shard].add(user_id)
        # Changelog entries (and their cached wires) exist to build delta
        # ships, which only make sense once a full ship has established a
        # floor.  Before that -- notably for the inline/thread executors,
        # which evaluate straight off the live store and never ship -- the
        # mutation is pure version arithmetic: no entry objects, no wire
        # caching, nothing for a non-shipping session to pay.
        if self._floor_versions[shard] is not None:
            self._changelog[shard][user_id] = _ChangeEntry(
                version=self._versions[shard], sequence_number=sequence_number
            )

    def _record_removal(self, user_id: str) -> None:
        shard = self.shard_of(user_id)
        self._versions[shard] += 1
        self._members[shard].discard(user_id)
        if self._floor_versions[shard] is not None:
            self._changelog[shard][user_id] = _ChangeEntry(
                version=self._versions[shard], sequence_number=None
            )

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def ship_plan(self, shard_id: int, acked_version: Optional[int] = None) -> ShardShipment:
        """The cheapest shipment that brings any worker to the shard's version.

        First call (or a delta grown past half the shard): a **full ship** --
        the complete shard payload is written atomically to a spool file
        (merging the previous floor file, so only genuinely new wires are
        serialized) and the changelog resets.  Later calls: a **delta ship**
        -- only changed records travel, with their wire forms cached so an
        unchanged store serializes nothing, however many passes evaluate it.

        ``acked_version`` is the version the *target worker* has confirmed
        applied (the affinity dispatcher's handshake).  When it falls inside
        the changelog's span, the shipment is an **acked delta** carrying only
        changes strictly newer than the ack -- a warm unchanged shard ships
        zero records and zero bytes, where the floor-based delta would re-send
        the whole floor->current span every pass.  An ack the changelog cannot
        anchor (unknown worker, restarted worker, advanced floor) transparently
        falls back to the floor/full logic below.
        """
        if not 0 <= shard_id < self.shard_count:
            raise ValueError(f"shard_id must be in [0, {self.shard_count})")
        version = self._versions[shard_id]
        floor = self._floor_versions[shard_id]
        changelog = self._changelog[shard_id]
        members = self._members[shard_id]
        if not (
            acked_version is not None
            and floor is not None
            and floor <= acked_version <= version
            # A changelog grown far past the membership is mostly history no
            # acked worker needs; fall through so the full-ship heuristics can
            # compact it (the acked worker then re-anchors from the new floor).
            and len(changelog) <= max(4, len(members))
        ):
            acked_version = None
        if acked_version is None:
            # Floor deltas span floor -> current, so without a floor advance
            # they would be re-shipped in full every pass forever.  Advance
            # when the delta covers a sizeable fraction of the shard, or when
            # the *same* non-empty delta has been shipped a few times already
            # (a steady-trickle shard whose changes paused): the rewrite
            # merges the old spool file with the changelog, so it costs file
            # IO, not re-serialization of unchanged members.
            if changelog and self._last_shipped[shard_id] == (floor, version):
                self._repeat_ships[shard_id] += 1
            else:
                self._repeat_ships[shard_id] = 0
            if (
                floor is None
                or len(changelog) > max(2, len(members) // 2)
                or self._repeat_ships[shard_id] >= 3
            ):
                return self._full_ship(shard_id, version, [self._reports[u] for u in members])
            self._last_shipped[shard_id] = (floor, version)
            delta_base = floor
            self.delta_ships += 1
        else:
            delta_base = acked_version
            self.acked_ships += 1
        upserts, removals, bytes_shipped = self._delta_records(shard_id, delta_base)
        return ShardShipment(
            store_token=self.store_token,
            shard_id=shard_id,
            version=version,
            floor_version=floor,
            spool_path=self._floor_paths[shard_id],  # type: ignore[arg-type]
            delta_base=delta_base,
            upserts=upserts,
            removals=removals,
            full_ship=False,
            bytes_shipped=bytes_shipped,
            record_count=len(upserts),
            spool_crc=self._floor_crcs[shard_id],
        )

    def _delta_records(
        self, shard_id: int, newer_than: int
    ) -> tuple[tuple[tuple[str, int, Any], ...], tuple[str, ...], int]:
        """The state-based delta ``newer_than -> current`` of one shard.

        Upserts carry the record's current wire form, serialized at most once
        per revision (cached on the changelog entry); every changelog entry at
        or below ``newer_than`` is filtered out, which is exactly what makes
        an acked delta cheaper than a floor delta.
        """
        changelog = self._changelog[shard_id]
        upserts: list[tuple[str, int, Any]] = []
        removals: list[str] = []
        bytes_shipped = 0
        for user_id, entry in sorted(changelog.items()):
            if entry.version <= newer_than:
                continue
            if entry.sequence_number is None:
                removals.append(user_id)
                continue
            if entry.wire is None:
                report = self._reports.get(user_id)
                if report is None or report.sequence_number != entry.sequence_number:
                    # Superseded between passes; ship what is actually stored.
                    if report is None:
                        removals.append(user_id)
                        continue
                    entry.sequence_number = report.sequence_number
                entry.wire = self.serializer(self._reports[user_id].ciphertext)
                entry.wire_bytes = wire_size_bytes(entry.wire)
                self.serialized_records += 1
            upserts.append((user_id, entry.sequence_number, entry.wire))
            bytes_shipped += entry.wire_bytes
        return tuple(upserts), tuple(removals), bytes_shipped

    def _full_ship(self, shard_id: int, version: int, members: list[StoredReport]) -> ShardShipment:
        # Wires already on disk (the previous floor file) are reused: a floor
        # advance serializes only members the changelog knows no wire for.
        previous: dict[str, tuple[int, Any]] = {}
        previous_path = self._floor_paths[shard_id]
        if previous_path is not None and os.path.exists(previous_path):
            with open(previous_path, "rb") as handle:
                _, _, old_records = pickle.load(handle)
            previous = {user_id: (seq, wire) for user_id, seq, wire in old_records}
        records = []
        bytes_shipped = 0
        changelog = self._changelog[shard_id]
        for report in sorted(members, key=lambda r: r.user_id):
            entry = changelog.get(report.user_id)
            old = previous.get(report.user_id)
            if entry is not None and entry.wire is not None and entry.sequence_number == report.sequence_number:
                wire = entry.wire
                size = entry.wire_bytes
            elif old is not None and old[0] == report.sequence_number:
                wire = old[1]
                size = wire_size_bytes(wire)
            else:
                wire = self.serializer(report.ciphertext)
                size = wire_size_bytes(wire)
                self.serialized_records += 1
            records.append((report.user_id, report.sequence_number, wire))
            bytes_shipped += size
        path = self._write_spool(shard_id, version, tuple(records))
        self._floor_versions[shard_id] = version
        self._floor_paths[shard_id] = path
        changelog.clear()
        self._repeat_ships[shard_id] = 0
        self._last_shipped[shard_id] = (version, version)
        self.full_ships += 1
        return ShardShipment(
            store_token=self.store_token,
            shard_id=shard_id,
            version=version,
            floor_version=version,
            spool_path=path,
            delta_base=version,
            upserts=(),
            removals=(),
            full_ship=True,
            bytes_shipped=bytes_shipped,
            record_count=len(records),
            spool_crc=self._floor_crcs[shard_id],
        )

    def invalidate_floor(self, shard_id: int) -> None:
        """Forget a shard's floor file (it proved corrupt); next ship rewrites it.

        Called by the engine when a worker answers
        :class:`CorruptShardShipment`: the changelog's cached wires anchored
        on the bad floor are dropped with it, so the forced full ship
        re-serializes from the live reports -- the one source the corruption
        cannot have touched.  The corrupt file itself is left for the rewrite
        to replace (same shard, same spool naming).
        """
        if not 0 <= shard_id < self.shard_count:
            raise ValueError(f"shard_id must be in [0, {self.shard_count})")
        path = self._floor_paths[shard_id]
        if path is not None and os.path.exists(path):
            try:
                os.remove(path)
            except OSError:
                pass
        self._floor_versions[shard_id] = None
        self._floor_paths[shard_id] = None
        self._floor_crcs[shard_id] = None
        self._changelog[shard_id].clear()
        self._repeat_ships[shard_id] = 0
        self._last_shipped[shard_id] = None

    def _ensure_spool_dir(self) -> str:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-shards-")
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._spool_dir, ignore_errors=True
            )
        return self._spool_dir

    def _write_spool(self, shard_id: int, version: int, records: tuple) -> str:
        """Atomically publish the shard's full payload at ``version``.

        Written to a temp name and renamed so a worker never observes a
        half-written file; the previous floor file is deleted only after the
        new one is in place (passes are synchronous, so no task in flight
        still references it).  The payload's CRC32 is remembered and shipped
        with every handle anchored on this floor, so workers detect on-disk
        corruption before unpickling (no fsync: the spool is a rebuildable
        cache, integrity matters here, durability does not).
        """
        directory = self._ensure_spool_dir()
        path = os.path.join(directory, f"shard-{shard_id:04d}-v{version}.pkl")
        blob = pickle.dumps((shard_id, version, records), protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(path, blob, fsync=False)
        self._floor_crcs[shard_id] = checksum_bytes(blob)
        previous = self._floor_paths[shard_id]
        if previous is not None and previous != path and os.path.exists(previous):
            os.remove(previous)
        if self.fault_injector is not None:
            self.fault_injector.spool_written(path)
        return path

    def close(self) -> None:
        """Remove the spool directory (idempotent; also runs at GC)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._spool_dir = None
        self._floor_versions = [None] * self.shard_count
        self._floor_paths = [None] * self.shard_count

    # ------------------------------------------------------------------
    # Persistence (format-compatible with the base class)
    # ------------------------------------------------------------------
    def to_payload(self, engine=None) -> dict:
        payload = super().to_payload(engine=engine)
        payload["shards"] = self.shard_count
        return payload

    @classmethod
    def from_payload(cls, payload: dict, group: BilinearGroup, engine=None, shards: Optional[int] = None) -> "ShardedCiphertextStore":
        """Rebuild a sharded store; shard membership re-derives from the hash.

        ``shards`` overrides the payload's count (and the default for
        payloads written by the unsharded class).  Restored records start a
        fresh version history: the first evaluation full-ships every shard,
        exactly like a newly populated store.
        """
        base = CiphertextStore.from_payload(payload, group, engine=engine)
        count = shards if shards is not None else int(payload.get("shards", DEFAULT_SHARD_COUNT))
        store = cls(shards=count, max_age_seconds=base.max_age_seconds)
        store._reports = base._reports
        for user_id in store._reports:
            store._members[store.shard_of(user_id)].add(user_id)
        store.matching_state = base.matching_state
        return store


class ResidentShard:
    """One shard's worker-resident state: records plus rebuilt ciphertexts.

    Lives in the worker process between matching passes.  :meth:`sync` brings
    it to a shipment's version -- loading the spool file when the resident
    version is unknown or below the floor, applying the (idempotent,
    state-based) delta otherwise -- and :meth:`ciphertext` rebuilds records
    lazily, caching the result so an unchanged user is deserialized exactly
    once per residency, not once per pass.
    """

    def __init__(self, group: BilinearGroup, deserializer: Optional[Callable] = None):
        self.group = group
        self.deserializer = deserializer if deserializer is not None else wire_to_ciphertext
        self.version: Optional[int] = None
        # user_id -> [sequence_number, wire, rebuilt ciphertext or None]
        self._entries: dict[str, list] = {}
        #: Counters for the shipping metrics: spool loads and delta records
        #: applied since this residency was created.
        self.spool_loads = 0
        self.deltas_applied = 0

    def sync(self, handle: tuple) -> int:
        """Bring the resident state to the shipment's target version.

        Returns the applied version -- the worker reports it back so the
        dispatcher can ack it.  Raises :class:`StaleResidentShard` when the
        shipment's delta base lies above everything this worker can reach
        (resident state *and* spool file): the delta then provably misses
        records, and the dispatcher must re-ship from the floor.  Raises
        :class:`CorruptShardShipment` when the spool file fails its CRC (or
        cannot be read or unpickled at all): the parent must then invalidate
        the floor and reship a rewritten spool.
        """
        _, shard_id, version, _, spool_path, delta_base, upserts, removals, spool_crc = handle
        if self.version is not None and self.version == version:
            return self.version
        if self.version is None or self.version < delta_base:
            try:
                with open(spool_path, "rb") as fh:
                    blob = fh.read()
            except OSError as exc:
                raise CorruptShardShipment(
                    f"shard {shard_id}: spool file {spool_path!r} unreadable ({exc})", shard_id
                )
            if spool_crc is not None and zlib.crc32(blob) & 0xFFFFFFFF != spool_crc:
                raise CorruptShardShipment(
                    f"shard {shard_id}: spool file {spool_path!r} failed its integrity "
                    f"check (expected crc {spool_crc:#010x})",
                    shard_id,
                )
            try:
                _, spool_version, records = pickle.loads(blob)
            except Exception:
                # Arbitrary corruption surfaces as arbitrary unpickling
                # errors; all of them mean the same thing here.
                raise CorruptShardShipment(
                    f"shard {shard_id}: spool file {spool_path!r} would not unpickle", shard_id
                )
            if spool_version < delta_base:
                raise StaleResidentShard(
                    f"shard {shard_id}: resident at {self.version}, spool at "
                    f"{spool_version}, but the delta applies on top of {delta_base}"
                )
            self._entries = {
                user_id: [sequence_number, wire, None]
                for user_id, sequence_number, wire in records
            }
            self.version = spool_version
            self.spool_loads += 1
        for user_id, sequence_number, wire in upserts:
            entry = self._entries.get(user_id)
            if entry is not None and entry[0] == sequence_number and entry[1] == wire:
                continue  # already resident at this revision; keep the rebuilt object
            self._entries[user_id] = [sequence_number, wire, None]
            self.deltas_applied += 1
        for user_id in removals:
            self._entries.pop(user_id, None)
        self.version = version
        return self.version

    def ciphertext(self, user_id: str) -> HVECiphertext:
        """The rebuilt ciphertext of one resident user (KeyError if absent)."""
        entry = self._entries[user_id]
        if entry[2] is None:
            entry[2] = self.deserializer(self.group, entry[1])
        return entry[2]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._entries
