"""Ciphertext store and batch alert processing for the service provider.

The in-memory :class:`~repro.protocol.entities.ServiceProvider` keeps exactly
one ciphertext per user; a production deployment additionally needs

* **freshness management** -- location reports age out: a user who stopped
  reporting should not be matched against (and notified for) zones they left
  hours ago;
* **persistence** -- the provider must survive restarts without asking every
  subscriber to re-upload;
* **batch alert processing** -- several alerts declared together (e.g. all
  sites of one contact-tracing case, or a backlog accumulated during
  maintenance) should be matched in one pass over the store, with
  per-user short-circuiting across the whole batch.

This module adds those capabilities on top of the same HVE matching path.  The
persistence format stores only what the provider legitimately holds anyway:
pseudonyms, ciphertext components and timestamps -- never plaintext locations.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVE, HVECiphertext
from repro.crypto.serialization import deserialize_ciphertext, serialize_ciphertext
from repro.durability import atomic_write_bytes
from repro.protocol.matching import MatchCandidate, MatchingEngine, MatchingOptions
from repro.protocol.messages import LocationUpdate, Notification, TokenBatch

__all__ = ["StoredReport", "CiphertextStore", "BatchMatcher"]


@dataclass(frozen=True)
class StoredReport:
    """One user's latest encrypted location report plus its metadata."""

    user_id: str
    ciphertext: HVECiphertext
    sequence_number: int
    reported_at: float

    def age(self, now: float) -> float:
        """Seconds elapsed since the report was received."""
        return max(0.0, now - self.reported_at)


class CiphertextStore:
    """The service provider's database of encrypted location reports.

    Parameters
    ----------
    max_age_seconds:
        Reports older than this are considered stale and excluded from
        matching (and can be purged).  ``None`` disables expiry.
    """

    def __init__(self, max_age_seconds: Optional[float] = None):
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise ValueError("max_age_seconds must be positive (or None to disable expiry)")
        self.max_age_seconds = max_age_seconds
        self._reports: dict[str, StoredReport] = {}
        #: Matching-engine state snapshot found by :meth:`load` (``None`` when
        #: the file predates state persistence or none was saved).
        self.matching_state: Optional[dict] = None
        #: Optional :class:`~repro.service.faults.FaultInjector` hook; the
        #: session wires it in for chaos runs (snapshot tears here, plus the
        #: spool faults in the sharded subclass).  ``None`` in production.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, update: LocationUpdate, received_at: float) -> bool:
        """Store an update; returns True if it replaced / created the user's record.

        Stale updates (an older sequence number than what is stored) are
        ignored, which makes ingestion idempotent under re-delivery.
        """
        existing = self._reports.get(update.user_id)
        if existing is not None and update.sequence_number < existing.sequence_number:
            return False
        self._reports[update.user_id] = StoredReport(
            user_id=update.user_id,
            ciphertext=update.ciphertext,
            sequence_number=update.sequence_number,
            reported_at=received_at,
        )
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._reports)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._reports

    def report_for(self, user_id: str) -> StoredReport:
        """The stored report of one user (KeyError if absent)."""
        return self._reports[user_id]

    def fresh_reports(self, now: float) -> list[StoredReport]:
        """All reports that are still fresh at time ``now``, sorted by user id.

        Expired reports are filtered out *before* sorting, so the sort cost
        scales with the fresh population, not the whole store.
        """
        reports: Iterable[StoredReport] = self._reports.values()
        if self.max_age_seconds is not None:
            reports = (r for r in reports if r.age(now) <= self.max_age_seconds)
        return sorted(reports, key=lambda r: r.user_id)

    def fresh_candidates(self, now: float) -> list[MatchCandidate]:
        """The fresh reports as match candidates, sorted by user id.

        The single construction site of the store-to-candidate mapping
        (including the sequence-number plumbing incremental matching relies
        on), shared by :meth:`MatchingEngine.match_store` and the session
        service.
        """
        return [
            MatchCandidate(
                user_id=report.user_id,
                ciphertext=report.ciphertext,
                sequence_number=report.sequence_number,
            )
            for report in self.fresh_reports(now)
        ]

    def stale_users(self, now: float) -> list[str]:
        """Users whose latest report has expired."""
        if self.max_age_seconds is None:
            return []
        return sorted(r.user_id for r in self._reports.values() if r.age(now) > self.max_age_seconds)

    def purge_stale(self, now: float) -> int:
        """Drop expired reports; returns how many were removed."""
        stale = self.stale_users(now)
        for user_id in stale:
            del self._reports[user_id]
        return len(stale)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self, engine: Optional[MatchingEngine] = None) -> dict:
        """JSON-compatible snapshot of the store (ciphertexts in wire format).

        When ``engine`` is given, its incremental re-evaluation state
        (standing alerts, token signatures, last-seen sequence numbers and
        outcomes -- see :meth:`MatchingEngine.export_state`) is embedded in
        the same payload.  :meth:`save` writes this payload to a file;
        :meth:`repro.service.service.AlertService.snapshot` embeds it inside
        the wider session snapshot.
        """
        payload: dict = {
            "max_age_seconds": self.max_age_seconds,
            "reports": [
                {
                    "user_id": report.user_id,
                    "sequence_number": report.sequence_number,
                    "reported_at": report.reported_at,
                    "ciphertext": serialize_ciphertext(report.ciphertext),
                }
                for report in sorted(self._reports.values(), key=lambda r: r.user_id)
            ],
        }
        if engine is not None:
            payload["matching_state"] = engine.export_state()
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        group: BilinearGroup,
        engine: Optional[MatchingEngine] = None,
    ) -> "CiphertextStore":
        """Rebuild a store from :meth:`to_payload` output.

        When ``engine`` is given and the payload carries a matching-state
        snapshot, the engine's incremental state is restored from it.  The
        raw snapshot (or ``None``) is also kept on the returned store as
        ``matching_state`` so a caller can defer engine construction.
        """
        store = cls(max_age_seconds=payload.get("max_age_seconds"))
        for entry in payload.get("reports", []):
            report = StoredReport(
                user_id=entry["user_id"],
                ciphertext=deserialize_ciphertext(group, entry["ciphertext"]),
                sequence_number=int(entry["sequence_number"]),
                reported_at=float(entry["reported_at"]),
            )
            store._reports[report.user_id] = report
        store.matching_state = payload.get("matching_state")
        if engine is not None and store.matching_state is not None:
            engine.import_state(store.matching_state)
        return store

    def save(self, path: str | pathlib.Path, engine: Optional[MatchingEngine] = None) -> None:
        """Persist the store as JSON (see :meth:`to_payload`).

        When ``engine`` is given, its incremental re-evaluation state is
        embedded in the same file, so a provider restart restores both the
        ciphertexts and the standing-alert caches in one step.

        The write is atomic (tmp file + fsync + rename): a crash mid-save
        leaves the previous snapshot intact instead of a torn JSON file that
        :meth:`load` would choke on.
        """
        payload = json.dumps(self.to_payload(engine)).encode("utf-8")
        if self.fault_injector is not None:
            self.fault_injector.maybe_tear_snapshot(path, payload)
        atomic_write_bytes(path, payload)

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        group: BilinearGroup,
        engine: Optional[MatchingEngine] = None,
    ) -> "CiphertextStore":
        """Restore a store previously written by :meth:`save`.

        See :meth:`from_payload` for how ``engine`` participates.
        """
        payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        return cls.from_payload(payload, group, engine=engine)


class BatchMatcher:
    """Matches batches of alerts against a ciphertext store in one pass.

    All evaluation is delegated to a
    :class:`~repro.protocol.matching.MatchingEngine` (planned strategy by
    default); pass ``options=MatchingOptions(...)`` to select the naive
    parity path, worker threads or incremental re-evaluation, or inject a
    pre-built ``engine`` (e.g. the service provider's, to share incremental
    state).
    """

    def __init__(
        self,
        hve: HVE,
        store: CiphertextStore,
        engine: Optional[MatchingEngine] = None,
        options: Optional[MatchingOptions] = None,
    ):
        if engine is not None and options is not None:
            raise ValueError("pass either a pre-built engine or matching options, not both")
        self.hve = hve
        self.store = store
        self.engine = engine if engine is not None else MatchingEngine(hve, options)

    def process(self, batches: Sequence[TokenBatch], now: float, descriptions: Optional[dict[str, str]] = None) -> list[Notification]:
        """Evaluate every alert batch against every fresh report.

        For each user, alerts are evaluated in order and each alert
        short-circuits on its first matching token; a user can be notified for
        several distinct alerts (they are independent events), but only once
        per alert.  The store is scanned once: the fresh-report list and the
        token plan are both built a single time for the whole pass.
        """
        return self.engine.match_store(batches, self.store, now, descriptions=descriptions)

    def pairing_cost_upper_bound(self, batches: Iterable[TokenBatch], now: float) -> int:
        """Worst-case pairings (no short-circuiting) for matching the batches."""
        per_ciphertext = sum(batch.pairing_cost_per_ciphertext for batch in batches)
        return per_ciphertext * len(self.store.fresh_reports(now))

    def save(self, path: str | pathlib.Path) -> None:
        """Persist the store together with this matcher's incremental state."""
        self.store.save(path, engine=self.engine)

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        hve: HVE,
        options: Optional[MatchingOptions] = None,
    ) -> "BatchMatcher":
        """Restore a matcher (store + engine incremental state) from :meth:`save`.

        When the file carries matching state and no ``options`` are given,
        the engine defaults to ``incremental=True`` so the restored state is
        actually consulted.  An explicitly non-incremental engine skips the
        import entirely: it would never read or maintain the state, and a
        half-imported cache must not make ``standing_alerts()`` lie.
        """
        store = CiphertextStore.load(path, hve.group)
        if options is None and store.matching_state is not None:
            options = MatchingOptions(incremental=True)
        engine = MatchingEngine(hve, options)
        if store.matching_state is not None and engine.options.incremental:
            engine.import_state(store.matching_state)
        return cls(hve, store, engine=engine)
