"""Prefix-tree data structure underlying every variable-length encoding.

Section 3.1 of the paper represents a prefix code by its *prefix tree*: a
(possibly non-binary) tree whose leaves carry the prefix codes and whose
internal nodes carry the codes' common prefixes.  The paper's Algorithms 1-3
need, for every node: its children, its parent, its *weight* (the probability
mass of the leaves below it) and its *code* (the symbol string on the path
from the root).  The tree's depth is the *reference length* (RL), the padded
length of every index and codeword.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

__all__ = ["PrefixTreeNode", "PrefixTree"]


@dataclass(eq=False)
class PrefixTreeNode:
    """One node of a prefix tree.

    Attributes
    ----------
    weight:
        For a leaf, the alert likelihood of the cell it represents; for an
        internal node, the sum of its children's weights (the Huffman
        mechanism).
    code:
        Symbol string on the path from the root ("" for the root).  Symbols
        are single characters drawn from the alphabet ``{0, ..., B-1}``.
    cell_id:
        The grid cell the leaf stands for; ``None`` on internal nodes.
    children:
        Ordered child list (index ``i`` corresponds to edge symbol ``i``).
    parent:
        Parent node, ``None`` for the root.
    """

    weight: float
    code: str = ""
    cell_id: Optional[int] = None
    children: list["PrefixTreeNode"] = field(default_factory=list)
    parent: Optional["PrefixTreeNode"] = None

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True if the node has no children (and therefore carries a cell)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True if the node has no parent."""
        return self.parent is None

    @property
    def depth(self) -> int:
        """Number of edges from the root to this node."""
        return len(self.code)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_child(self, child: "PrefixTreeNode") -> None:
        """Attach ``child`` as the next ordered child of this node."""
        child.parent = self
        self.children.append(child)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["PrefixTreeNode"]:
        """Pre-order traversal of this node's subtree (children left-to-right)."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def leaves(self) -> list["PrefixTreeNode"]:
        """Leaves of this subtree in left-to-right tree order.

        This ordering is what Algorithm 3 calls the ``leaves`` list: "ordered
        as they appear on the tree while traversing; no two edges of the tree
        cross path".
        """
        return [node for node in self.iter_subtree() if node.is_leaf]

    def leaf_count(self) -> int:
        """Number of leaves below (and including) this node."""
        return sum(1 for _ in self.leaves())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"PrefixTreeNode({kind}, code={self.code!r}, weight={self.weight:g}, cell={self.cell_id})"


class PrefixTree:
    """A rooted prefix tree with the queries Algorithms 1 and 3 rely on.

    The tree is usually produced by :func:`repro.encoding.huffman.build_huffman_tree`,
    :func:`repro.encoding.bary.build_bary_huffman_tree` or
    :func:`repro.encoding.balanced.build_balanced_tree`; it can also be built
    directly from explicit code assignments (see :meth:`from_codes`), which is
    how tests construct the paper's running example verbatim.
    """

    def __init__(self, root: PrefixTreeNode, alphabet_size: int = 2, assign_codes: bool = True):
        if alphabet_size < 2:
            raise ValueError(f"alphabet size must be >= 2, got {alphabet_size}")
        self.root = root
        self.alphabet_size = alphabet_size
        if assign_codes:
            self.assign_codes()

    # ------------------------------------------------------------------
    # Code assignment (the Traverse() routine of Algorithm 1)
    # ------------------------------------------------------------------
    def assign_codes(self) -> None:
        """(Re)compute every node's code from the tree topology.

        Follows Algorithm 1's recursive traversal: a node's ``i``-th child
        gets the parent's code extended by symbol ``i``.
        """

        def visit(node: PrefixTreeNode) -> None:
            for symbol, child in enumerate(node.children):
                if symbol >= self.alphabet_size:
                    raise ValueError(
                        f"node {node.code!r} has {len(node.children)} children, "
                        f"exceeding alphabet size {self.alphabet_size}"
                    )
                child.code = node.code + str(symbol)
                visit(child)

        self.root.code = ""
        visit(self.root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def reference_length(self) -> int:
        """The tree depth RL: the length every index/codeword is padded to."""
        return max(leaf.depth for leaf in self.leaves())

    def nodes(self) -> list[PrefixTreeNode]:
        """All nodes in pre-order."""
        return list(self.root.iter_subtree())

    def internal_nodes(self) -> list[PrefixTreeNode]:
        """All internal (non-leaf) nodes in pre-order; includes the root."""
        return [node for node in self.root.iter_subtree() if not node.is_leaf]

    def leaves(self) -> list[PrefixTreeNode]:
        """Leaves in left-to-right tree order."""
        return self.root.leaves()

    def leaf_codes(self) -> dict[int, str]:
        """Mapping from cell id to (unpadded) prefix code."""
        mapping: dict[int, str] = {}
        for leaf in self.leaves():
            if leaf.cell_id is None:
                raise ValueError("every leaf must carry a cell_id to produce a grid encoding")
            mapping[leaf.cell_id] = leaf.code
        return mapping

    def average_code_length(self, probabilities: Optional[Sequence[float]] = None) -> float:
        """Expected codeword length ``sum_i p(v_i) * len(c_i)``.

        With ``probabilities`` omitted, the leaves' own weights are used
        (normalised); passing an explicit vector lets callers evaluate a tree
        under a distribution different from the one it was built for.
        """
        leaves = self.leaves()
        if probabilities is None:
            weights = [leaf.weight for leaf in leaves]
        else:
            weights = []
            for leaf in leaves:
                if leaf.cell_id is None or leaf.cell_id >= len(probabilities):
                    raise ValueError("probabilities vector does not cover every leaf cell id")
                weights.append(probabilities[leaf.cell_id])
        total = sum(weights)
        if total <= 0:
            return float(self.reference_length)
        return sum(w * leaf.depth for w, leaf in zip(weights, leaves)) / total

    def max_code_length(self) -> int:
        """Length of the longest codeword (equals the reference length)."""
        return self.reference_length

    def check_prefix_property(self) -> None:
        """Raise ``ValueError`` if any leaf code is a prefix of another.

        For a tree built from parent/child links this holds by construction;
        the check exists as a safety net for hand-constructed trees and is
        exercised by the property-based tests.
        """
        codes = sorted(code for code in (leaf.code for leaf in self.leaves()))
        for first, second in zip(codes, codes[1:]):
            if second.startswith(first):
                raise ValueError(f"prefix property violated: {first!r} is a prefix of {second!r}")

    def satisfies_kraft_inequality(self) -> bool:
        """True if the leaf code lengths satisfy the Kraft inequality (Eq. 5)."""
        return sum(self.alphabet_size ** (-leaf.depth) for leaf in self.leaves()) <= 1.0 + 1e-12

    # ------------------------------------------------------------------
    # Alternative constructor
    # ------------------------------------------------------------------
    @classmethod
    def from_codes(
        cls,
        codes: dict[int, str],
        weights: Optional[dict[int, float]] = None,
        alphabet_size: int = 2,
    ) -> "PrefixTree":
        """Build a tree from explicit ``cell_id -> code`` assignments.

        Raises ``ValueError`` if the codes do not form a prefix code (a code
        equal to or extending another, or a code colliding with an internal
        node position).
        """
        if not codes:
            raise ValueError("at least one code is required")
        weights = weights or {}
        root = PrefixTreeNode(weight=0.0, code="")
        # Children are kept in symbol order but only symbols that actually
        # occur are materialised, so sparse prefix codes (e.g. a single code
        # "1") do not create phantom leaves.
        children_by_symbol: dict[int, dict[int, PrefixTreeNode]] = {}

        def child_for(node: PrefixTreeNode, symbol: int) -> PrefixTreeNode:
            table = children_by_symbol.setdefault(id(node), {})
            if symbol not in table:
                child = PrefixTreeNode(weight=0.0, code=node.code + str(symbol))
                child.parent = node
                table[symbol] = child
                node.children = [table[s] for s in sorted(table)]
            return table[symbol]

        for cell_id, code in sorted(codes.items(), key=lambda kv: kv[1]):
            if not code:
                raise ValueError("the empty string cannot be a leaf code")
            node = root
            for symbol_char in code:
                symbol = int(symbol_char)
                if symbol < 0 or symbol >= alphabet_size:
                    raise ValueError(f"symbol {symbol_char!r} outside alphabet of size {alphabet_size}")
                if node.cell_id is not None:
                    raise ValueError(f"code {code!r} extends existing leaf code {node.code!r}")
                node = child_for(node, symbol)
            if node.children or node.cell_id is not None:
                raise ValueError(f"code {code!r} collides with an existing code")
            node.cell_id = cell_id
            node.weight = float(weights.get(cell_id, 0.0))

        tree = cls(root, alphabet_size=alphabet_size, assign_codes=False)

        # Recompute internal weights bottom-up.
        def accumulate(node: PrefixTreeNode) -> float:
            if node.is_leaf:
                return node.weight
            node.weight = sum(accumulate(child) for child in node.children)
            return node.weight

        accumulate(root)
        tree.check_prefix_property()
        return tree
