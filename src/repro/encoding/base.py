"""Common interface implemented by every grid encoding.

The protocol layer, the experiment harness and the benchmarks only ever talk
to encodings through this interface, so fixed-length baselines and the
proposed variable-length schemes are interchangeable:

* :class:`GridEncoding` -- a concrete assignment of binary indexes to cells
  for one probability vector, able to produce minimized token patterns for any
  alert zone;
* :class:`EncodingScheme` -- a factory that builds a :class:`GridEncoding`
  from a per-cell alert-likelihood vector (one scheme per paper technique).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.crypto.counting import pairing_cost_of_tokens

__all__ = ["GridEncoding", "EncodingScheme", "pattern_matches_index"]


def pattern_matches_index(pattern: str, index: str) -> bool:
    """HVE match semantics: every non-star pattern symbol equals the index symbol.

    Both strings must have the same length (the reference length RL).
    """
    if len(pattern) != len(index):
        raise ValueError(f"pattern length {len(pattern)} != index length {len(index)}")
    return all(p == "*" or p == i for p, i in zip(pattern, index))


class GridEncoding(ABC):
    """A concrete cell-to-index assignment plus its token-minimization rule.

    Subclasses must populate :attr:`name` and implement the three abstract
    methods; everything else (cost accounting, correctness auditing) is
    derived behaviour shared by all schemes.
    """

    #: Human-readable scheme name used in experiment reports.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def n_cells(self) -> int:
        """Number of cells covered by this encoding."""

    @property
    @abstractmethod
    def reference_length(self) -> int:
        """Length RL of every padded index -- the HVE width to set up."""

    @abstractmethod
    def index_of(self, cell_id: int) -> str:
        """The padded binary index the user in ``cell_id`` encrypts."""

    @abstractmethod
    def token_patterns(self, alert_cells: Sequence[int]) -> list[str]:
        """Minimized token patterns covering exactly ``alert_cells``."""

    # ------------------------------------------------------------------
    # Derived behaviour
    # ------------------------------------------------------------------
    def indexes(self) -> dict[int, str]:
        """Mapping of every cell id to its padded index."""
        return {cell_id: self.index_of(cell_id) for cell_id in range(self.n_cells)}

    def cell_of_index(self, index: str) -> int:
        """Inverse lookup: which cell an index belongs to.

        Raises ``KeyError`` for strings that are not assigned to any cell.
        """
        for cell_id in range(self.n_cells):
            if self.index_of(cell_id) == index:
                return cell_id
        raise KeyError(f"index {index!r} is not assigned to any cell")

    def cells_matching_pattern(self, pattern: str) -> list[int]:
        """All cells whose index satisfies ``pattern`` (used by correctness audits)."""
        return [cell_id for cell_id in range(self.n_cells) if pattern_matches_index(pattern, self.index_of(cell_id))]

    def covered_cells(self, patterns: Iterable[str]) -> set[int]:
        """Union of cells matched by a set of token patterns."""
        covered: set[int] = set()
        for pattern in patterns:
            covered.update(self.cells_matching_pattern(pattern))
        return covered

    def audit_tokens(self, alert_cells: Sequence[int], patterns: Sequence[str]) -> None:
        """Raise ``AssertionError`` if ``patterns`` do not cover exactly ``alert_cells``.

        "Exactly" matters in both directions: a missed cell means an alerted
        user is never notified; an extra cell means a user outside the zone is
        falsely notified (and the SP learns a wrong containment fact).
        """
        expected = set(alert_cells)
        actual = self.covered_cells(patterns)
        missing = expected - actual
        extra = actual - expected
        if missing or extra:
            raise AssertionError(
                f"{self.name}: token cover mismatch; missing cells {sorted(missing)[:5]}, "
                f"extra cells {sorted(extra)[:5]}"
            )

    def pairing_cost(self, alert_cells: Sequence[int], num_ciphertexts: int = 1) -> int:
        """Pairings to evaluate this zone's tokens against ``num_ciphertexts`` ciphertexts."""
        if num_ciphertexts < 0:
            raise ValueError("num_ciphertexts must be non-negative")
        return pairing_cost_of_tokens(self.token_patterns(alert_cells)) * num_ciphertexts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, n_cells={self.n_cells}, RL={self.reference_length})"


class EncodingScheme(ABC):
    """Factory turning a per-cell likelihood vector into a :class:`GridEncoding`."""

    #: Scheme name; concrete classes override it.
    name: str = "abstract"

    @abstractmethod
    def build(self, probabilities: Sequence[float]) -> GridEncoding:
        """Build the encoding for ``probabilities`` (one entry per cell)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
