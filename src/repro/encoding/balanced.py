"""Balanced prefix tree baseline (Section 3.2, "balanced tree").

The paper uses a *balanced tree* as the baseline to isolate the benefit of the
Huffman construction from the benefit of merely using a prefix tree: the
balanced tree is a complete binary tree built in ``log2(n)`` pairing steps
over the probability-sorted priority queue, so every leaf ends up at (nearly)
the same depth.  Because code lengths barely vary, it behaves much like a
fixed-length code and -- as the evaluation confirms -- yields little to no
improvement, in contrast with the Huffman tree.
"""

from __future__ import annotations

from typing import Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.coding_scheme import VariableLengthEncoding, build_coding_artifacts
from repro.encoding.prefix_tree import PrefixTree, PrefixTreeNode
from repro.probability.distributions import validate_probability_vector

__all__ = ["build_balanced_tree", "BalancedTreeEncodingScheme"]


def build_balanced_tree(probabilities: Sequence[float]) -> PrefixTree:
    """Build the balanced prefix tree described in Section 3.2.

    The cells are sorted ascending by probability and placed in a queue; at
    each step consecutive pairs ``(Q[2i], Q[2i+1])`` are replaced by a parent
    whose weight is the sum of its children's.  When the queue has odd length
    the last node is carried over unpaired, so after ``ceil(log2(n))`` steps a
    single root remains.
    """
    validate_probability_vector(probabilities, allow_zero_sum=True)
    n = len(probabilities)

    nodes = [PrefixTreeNode(weight=float(p), cell_id=cell_id) for cell_id, p in enumerate(probabilities)]
    if n == 1:
        root = PrefixTreeNode(weight=nodes[0].weight)
        root.add_child(nodes[0])
        return PrefixTree(root)

    # Sort ascending by weight (stable, so ties keep cell order).
    queue = sorted(nodes, key=lambda node: node.weight)
    while len(queue) > 1:
        next_queue: list[PrefixTreeNode] = []
        for i in range(0, len(queue) - 1, 2):
            parent = PrefixTreeNode(weight=queue[i].weight + queue[i + 1].weight)
            parent.add_child(queue[i])
            parent.add_child(queue[i + 1])
            next_queue.append(parent)
        if len(queue) % 2 == 1:
            next_queue.append(queue[-1])
        queue = next_queue

    return PrefixTree(queue[0])


class BalancedTreeEncodingScheme(EncodingScheme):
    """Variable-length baseline: balanced prefix tree + Algorithm 3 minimization."""

    name = "balanced"

    def build(self, probabilities: Sequence[float]) -> VariableLengthEncoding:
        """Build the balanced-tree grid encoding for a likelihood vector."""
        tree = build_balanced_tree(probabilities)
        artifacts = build_coding_artifacts(tree)
        return VariableLengthEncoding(name=self.name, tree=tree, artifacts=artifacts)
