"""Uniform fixed-length encoding: the baseline of [14].

The earliest secure alert-zone system (Ghinita & Rughinis [14]) assigns every
cell a fixed-length binary identifier -- all cells are treated as equally
likely to be alerted -- and aggregates the identifiers of an alert zone's
cells through Karnaugh-map style logic minimization before token generation.
This module implements that baseline with:

* row-major code assignment (cell ``i`` gets the ``RL``-bit binary
  representation of ``i``, ``RL = ceil(log2 n)``), and
* Quine-McCluskey minimization, treating unassigned codewords (when ``n`` is
  not a power of two) as don't-cares.

This scheme is also the *reference* of the evaluation: the improvement
percentages of Figs. 9-12 are computed against its pairing counts.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.encoding.base import EncodingScheme, GridEncoding
from repro.minimization.quine_mccluskey import QuineMcCluskeyMinimizer

__all__ = ["FixedLengthEncoding", "FixedLengthEncodingScheme"]


class FixedLengthEncoding(GridEncoding):
    """Fixed-length binary grid encoding with logic-minimized tokens.

    Parameters
    ----------
    n_cells:
        Number of grid cells.
    code_by_cell:
        Optional explicit assignment of integer codewords to cells; defaults
        to the identity (row-major) assignment of [14].  The SGO baseline
        reuses this class with a probability-aware assignment.
    name:
        Scheme name for reports.
    """

    def __init__(self, n_cells: int, code_by_cell: Sequence[int] | None = None, name: str = "fixed"):
        if n_cells < 1:
            raise ValueError("n_cells must be at least 1")
        self.name = name
        self._n_cells = n_cells
        self._width = max(1, math.ceil(math.log2(n_cells)))
        if code_by_cell is None:
            code_by_cell = list(range(n_cells))
        if len(code_by_cell) != n_cells:
            raise ValueError("code_by_cell must assign exactly one code per cell")
        if len(set(code_by_cell)) != n_cells:
            raise ValueError("cell codes must be distinct")
        upper = 1 << self._width
        for code in code_by_cell:
            if not 0 <= code < upper:
                raise ValueError(f"code {code} does not fit in {self._width} bits")
        self._code_by_cell = list(code_by_cell)
        used = set(code_by_cell)
        dont_cares = frozenset(code for code in range(upper) if code not in used)
        self._minimizer = QuineMcCluskeyMinimizer(width=self._width, dont_cares=dont_cares)

    # ------------------------------------------------------------------
    # GridEncoding interface
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells covered by the encoding."""
        return self._n_cells

    @property
    def reference_length(self) -> int:
        """Fixed code length ``RL = ceil(log2 n)`` -- the HVE width."""
        return self._width

    def index_of(self, cell_id: int) -> str:
        """The RL-bit binary index of ``cell_id``."""
        if not 0 <= cell_id < self._n_cells:
            raise KeyError(f"unknown cell id {cell_id}")
        return format(self._code_by_cell[cell_id], f"0{self._width}b")

    def token_patterns(self, alert_cells: Sequence[int]) -> list[str]:
        """Minimized token patterns via Quine-McCluskey aggregation."""
        codes = []
        for cell_id in set(alert_cells):
            if not 0 <= cell_id < self._n_cells:
                raise KeyError(f"unknown cell id {cell_id}")
            codes.append(self._code_by_cell[cell_id])
        if not codes:
            return []
        return self._minimizer.minimize(codes)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def code_of(self, cell_id: int) -> int:
        """The integer codeword assigned to a cell."""
        return self._code_by_cell[cell_id]


class FixedLengthEncodingScheme(EncodingScheme):
    """The probability-oblivious baseline of [14] (row-major fixed-length codes)."""

    name = "fixed"

    def build(self, probabilities: Sequence[float]) -> FixedLengthEncoding:
        """Build the fixed-length encoding; ``probabilities`` only fixes the cell count."""
        return FixedLengthEncoding(n_cells=len(probabilities), name=self.name)
