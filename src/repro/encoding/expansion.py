"""Non-binary symbol expansion (Section 4 of the paper).

HVE operates on bit vectors, so when the encoding alphabet is extended to
``Sigma = {0, 1, ..., B-1}`` each symbol must be expanded into ``B`` bits
before encryption / token generation:

* a **codeword** symbol ``i`` becomes ``B`` characters with the ``(i+1)``-th
  set to ``1`` and every other position a star -- one non-star bit per real
  symbol, which is what makes larger alphabets cheaper to match;
* the **star** symbol of a codeword becomes ``B`` stars;
* an **index** is expanded the same way and then every remaining star is
  turned into ``0``, except that symbols introduced by the zero-padding step
  map to ``B`` zero bits outright.  The zero positions left behind by real
  symbols are what later allows the trusted authority to *refine* a cell into
  ``2^k`` sub-cells without re-encoding the grid (Fig. 5 / end of Section 4).

For the binary alphabet (``B = 2``) the paper applies no expansion -- symbols
already are bits -- and these helpers are simply not used by the encoder.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["expand_symbol", "expand_codeword", "expand_index", "refine_cell_indexes"]


def expand_symbol(symbol: str, alphabet_size: int) -> str:
    """Expand one codeword symbol to ``alphabet_size`` characters.

    ``"*"`` expands to all stars; symbol ``i`` expands to a string with ``1``
    at position ``i`` and stars elsewhere.
    """
    if alphabet_size < 2:
        raise ValueError("alphabet_size must be at least 2")
    if symbol == "*":
        return "*" * alphabet_size
    value = int(symbol)
    if not 0 <= value < alphabet_size:
        raise ValueError(f"symbol {symbol!r} outside alphabet of size {alphabet_size}")
    return "".join("1" if position == value else "*" for position in range(alphabet_size))


def expand_codeword(codeword: str, alphabet_size: int) -> str:
    """Expand a star-padded codeword (token pattern) to its binary/star form."""
    return "".join(expand_symbol(symbol, alphabet_size) for symbol in codeword)


def expand_index(prefix_code: str, reference_length: int, alphabet_size: int) -> str:
    """Expand a cell's (unpadded) prefix code into its binary index.

    The prefix code is first zero-padded to ``reference_length`` symbols; real
    symbols expand to one-hot bit groups, padding symbols expand to all-zero
    groups, and any remaining star positions are set to ``0`` (Section 4,
    "Indexes").  The result has ``reference_length * alphabet_size`` bits.
    """
    if len(prefix_code) > reference_length:
        raise ValueError(
            f"prefix code {prefix_code!r} longer than reference length {reference_length}"
        )
    groups = []
    for symbol in prefix_code:
        groups.append(expand_symbol(symbol, alphabet_size).replace("*", "0"))
    for _ in range(reference_length - len(prefix_code)):
        groups.append("0" * alphabet_size)
    return "".join(groups)


def refine_cell_indexes(prefix_code: str, reference_length: int, alphabet_size: int) -> list[str]:
    """Indexes available for refining one cell into sub-cells (end of Section 4).

    The expansion of the cell's own (non-padding) symbols leaves
    ``alphabet_size - 1`` zero bits per symbol that carry no information; the
    trusted authority can later enumerate those positions to split the cell
    into finer sub-cells while existing tokens and the coding tree keep
    working.  Returns every refined index, in lexicographic order of the
    enumerated bits; the first entry is the cell's current index.

    For the paper's example (``prefix_code="2"``, RL 2, B = 3) this yields
    ``['001000', '011000', '101000', '111000']``.
    """
    base = expand_index(prefix_code, reference_length, alphabet_size)
    # Free positions: the star positions of the *codeword* expansion of the
    # real symbols (they were forced to zero in the index).
    free_positions = []
    for group_index, symbol in enumerate(prefix_code):
        expanded = expand_symbol(symbol, alphabet_size)
        for offset, char in enumerate(expanded):
            if char == "*":
                free_positions.append(group_index * alphabet_size + offset)

    if not free_positions:
        return [base]

    refined = []
    for assignment in range(1 << len(free_positions)):
        bits = list(base)
        for bit_index, position in enumerate(free_positions):
            bits[position] = "1" if (assignment >> (len(free_positions) - 1 - bit_index)) & 1 else "0"
        refined.append("".join(bits))
    return refined
