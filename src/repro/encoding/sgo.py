"""Probability-aware fixed-length baseline modelled after the SGO of [23].

The state-of-the-art competitor in the paper's evaluation is the *Scaled Gray
Optimizer* (Shaham, Ghinita & Shahabi, DBSec 2020): a fixed-length scheme that
uses graph embedding to assign cell codes such that cells likely to be alerted
(and alerted together) receive codewords at small Hamming distance, which
improves the effectiveness of logic minimization when many cells are alerted.

Without the original implementation, this module provides a faithful stand-in
that captures the published behaviour (see DESIGN.md, substitution 3):

* cells are ranked by alert likelihood;
* the ``i``-th ranked cell receives the ``i``-th **Gray code** of width RL, so
  consecutively-ranked cells differ in exactly one bit and the most likely
  cells cluster in a compact region of the code hypercube;
* alert zones are minimized with the same Quine-McCluskey aggregation as the
  uniform baseline.

As in the paper, the scheme shines when alert zones are large (many alerted
cells offer many aggregation opportunities) and provides little benefit for
small, sparse zones -- the regime the Huffman scheme targets.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.fixed_length import FixedLengthEncoding
from repro.probability.distributions import validate_probability_vector

__all__ = ["gray_code", "ScaledGrayEncoding", "ScaledGrayEncodingScheme"]


def gray_code(value: int) -> int:
    """The ``value``-th element of the reflected binary Gray code sequence."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return value ^ (value >> 1)


class ScaledGrayEncoding(FixedLengthEncoding):
    """Fixed-length encoding with probability-ranked Gray code assignment."""

    def __init__(self, probabilities: Sequence[float], name: str = "sgo"):
        validate_probability_vector(probabilities, allow_zero_sum=True)
        n_cells = len(probabilities)
        # Rank cells by decreasing likelihood (ties broken by cell id for
        # determinism) and hand rank i the i-th Gray code.
        ranking = sorted(range(n_cells), key=lambda cell_id: (-probabilities[cell_id], cell_id))
        code_by_cell = [0] * n_cells
        for rank, cell_id in enumerate(ranking):
            code_by_cell[cell_id] = gray_code(rank)
        super().__init__(n_cells=n_cells, code_by_cell=code_by_cell, name=name)
        self.probabilities = list(probabilities)


class ScaledGrayEncodingScheme(EncodingScheme):
    """The SGO-style probability-aware fixed-length scheme of [23]."""

    name = "sgo"

    def build(self, probabilities: Sequence[float]) -> ScaledGrayEncoding:
        """Build the Gray-code encoding for a likelihood vector."""
        return ScaledGrayEncoding(probabilities, name=self.name)
