"""Canonical Huffman codes: compact publication of the grid encoding.

In the deployed system the trusted authority must publish the cell-to-index
assignment to every subscriber (Fig. 3: "grid indexes" flow to the users).
Shipping the full codebook costs one codeword per cell; *canonical* Huffman
codes remove that cost almost entirely: once codeword **lengths** are fixed,
the canonical form assigns codewords in a deterministic way (sorted by length,
then by cell id), so the authority only needs to publish the per-cell code
lengths -- a few bits per cell -- and every subscriber reconstructs the exact
same codebook locally.

The canonical transformation preserves code lengths, so the pairing-cost
behaviour of the encoding is unchanged; only the *shape* of the tree (and
therefore which specific internal nodes exist for token aggregation) may
differ from the weight-built Huffman tree.  Both variants are exposed so the
codebook-size / aggregation trade-off can be measured.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.coding_scheme import VariableLengthEncoding, build_coding_artifacts
from repro.encoding.huffman import build_huffman_tree
from repro.encoding.prefix_tree import PrefixTree

__all__ = [
    "canonical_codes_from_lengths",
    "canonicalize_tree",
    "CanonicalHuffmanEncodingScheme",
    "codebook_publication_bits",
]


def canonical_codes_from_lengths(lengths: Mapping[int, int]) -> dict[int, str]:
    """Assign canonical binary codewords given per-cell code lengths.

    Cells are processed by increasing code length (ties broken by cell id);
    each receives the next available codeword of its length, obtained by
    incrementing a counter and left-shifting when the length grows -- the
    standard canonical Huffman construction.

    Raises ``ValueError`` if the lengths violate the Kraft inequality (no
    prefix code with those lengths exists).
    """
    if not lengths:
        raise ValueError("at least one code length is required")
    for cell_id, length in lengths.items():
        if length < 1:
            raise ValueError(f"cell {cell_id} has non-positive code length {length}")

    kraft = sum(2.0 ** -length for length in lengths.values())
    if kraft > 1.0 + 1e-12:
        raise ValueError(f"code lengths violate the Kraft inequality (sum 2^-l = {kraft:.4f} > 1)")

    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: dict[int, str] = {}
    code = 0
    previous_length = ordered[0][1]
    for position, (cell_id, length) in enumerate(ordered):
        if position > 0:
            code = (code + 1) << (length - previous_length)
        codes[cell_id] = format(code, f"0{length}b")
        previous_length = length
    return codes


def canonicalize_tree(tree: PrefixTree) -> PrefixTree:
    """Rebuild a prefix tree in canonical form (same code lengths, canonical codewords)."""
    lengths = {cell_id: len(code) for cell_id, code in tree.leaf_codes().items()}
    weights = {leaf.cell_id: leaf.weight for leaf in tree.leaves() if leaf.cell_id is not None}
    codes = canonical_codes_from_lengths(lengths)
    return PrefixTree.from_codes(codes, weights=weights, alphabet_size=2)


def codebook_publication_bits(encoding_lengths: Sequence[int], explicit_codeword_bits: int | None = None) -> dict[str, int]:
    """Size (bits) of publishing the codebook explicitly vs canonically.

    ``explicit_codeword_bits`` defaults to the reference length (every
    codeword padded, as stored by users); the canonical form only ships each
    cell's length, encoded in ``ceil(log2(max_length + 1))`` bits.
    """
    if not encoding_lengths:
        raise ValueError("at least one code length is required")
    max_length = max(encoding_lengths)
    if explicit_codeword_bits is None:
        explicit_codeword_bits = max_length
    length_field_bits = max(1, (max_length + 1).bit_length())
    return {
        "explicit_bits": explicit_codeword_bits * len(encoding_lengths),
        "canonical_bits": length_field_bits * len(encoding_lengths),
    }


class CanonicalHuffmanEncodingScheme(EncodingScheme):
    """Huffman code lengths + canonical codeword assignment (publication-friendly).

    Builds the ordinary Huffman tree to obtain optimal code lengths, then
    replaces the codewords by their canonical assignment before deriving the
    grid indexes and coding tree of Algorithm 1.
    """

    name = "huffman-canonical"

    def build(self, probabilities: Sequence[float]) -> VariableLengthEncoding:
        """Build the canonical-Huffman grid encoding for a likelihood vector."""
        tree = canonicalize_tree(build_huffman_tree(probabilities))
        artifacts = build_coding_artifacts(tree)
        return VariableLengthEncoding(name=self.name, tree=tree, artifacts=artifacts)
