"""Quadtree / Morton-order fixed-length encoding (hierarchy-based baseline).

The earliest secure alert-zone system [14] organises the data domain in a
hierarchical structure and derives each cell's identifier from its path in
that hierarchy.  For a regular 2^k x 2^k grid the natural instantiation is the
quadtree, whose leaf identifiers are **Morton (Z-order) codes**: the bits of
the row and column indexes interleaved, so that each pair of bits selects a
quadrant at one level of the hierarchy.

Compared to the row-major assignment of :mod:`repro.encoding.fixed_length`,
Morton codes keep *spatially adjacent blocks* code-adjacent at every scale,
which is exactly what Karnaugh/Quine-McCluskey aggregation exploits for large,
contiguous alert zones.  This makes the quadtree encoding the strongest
fixed-length baseline for geometric (non-triggered) zones and the closest
approximation of [14]'s hierarchy; it is included in the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.fixed_length import FixedLengthEncoding

__all__ = ["interleave_bits", "morton_code", "QuadtreeEncoding", "QuadtreeEncodingScheme"]


def interleave_bits(value: int, width: int) -> int:
    """Spread the ``width`` low bits of ``value`` so they occupy even positions."""
    if value < 0:
        raise ValueError("value must be non-negative")
    result = 0
    for bit_index in range(width):
        if value & (1 << bit_index):
            result |= 1 << (2 * bit_index)
    return result


def morton_code(row: int, col: int, level_bits: int) -> int:
    """Morton (Z-order) code of a cell: row and column bits interleaved.

    ``level_bits`` is the number of bits per coordinate (the quadtree depth);
    the resulting code has ``2 * level_bits`` bits with column bits at even
    positions and row bits at odd positions.
    """
    if row < 0 or col < 0:
        raise ValueError("row and col must be non-negative")
    if row >= (1 << level_bits) or col >= (1 << level_bits):
        raise ValueError(f"coordinates ({row}, {col}) do not fit in {level_bits} bits")
    return interleave_bits(col, level_bits) | (interleave_bits(row, level_bits) << 1)


class QuadtreeEncoding(FixedLengthEncoding):
    """Fixed-length encoding whose codewords are quadtree (Morton) identifiers.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.  The quadtree is built over the enclosing
        ``2^k x 2^k`` square; cells outside the real grid become don't-cares
        for the minimizer.
    """

    def __init__(self, rows: int, cols: int, name: str = "quadtree"):
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        level_bits = max(1, math.ceil(math.log2(max(rows, cols))))
        code_by_cell = []
        for cell_id in range(rows * cols):
            row, col = divmod(cell_id, cols)
            code_by_cell.append(morton_code(row, col, level_bits))
        # Width is fixed by the quadtree depth, which may exceed ceil(log2 n)
        # for non-square or non-power-of-two grids; FixedLengthEncoding
        # computes width from n, so codes must fit -- enforce by passing the
        # enlarged domain through n_cells of the virtual square when needed.
        self.rows = rows
        self.cols = cols
        self.level_bits = level_bits
        virtual_cells = (1 << level_bits) ** 2
        if virtual_cells == rows * cols:
            super().__init__(n_cells=rows * cols, code_by_cell=code_by_cell, name=name)
        else:
            # Build over the real cells only, but with the quadtree's wider
            # codes: delegate validation to FixedLengthEncoding by treating
            # the width as that of the virtual square.
            super().__init__(n_cells=rows * cols, code_by_cell=None, name=name)
            self._install_codes(code_by_cell, width=2 * level_bits)

    def _install_codes(self, code_by_cell: Sequence[int], width: int) -> None:
        """Replace the default row-major codes with Morton codes of ``width`` bits."""
        from repro.minimization.quine_mccluskey import QuineMcCluskeyMinimizer

        if len(set(code_by_cell)) != len(code_by_cell):
            raise ValueError("Morton codes must be distinct")
        self._width = width
        self._code_by_cell = list(code_by_cell)
        used = set(code_by_cell)
        dont_cares = frozenset(code for code in range(1 << width) if code not in used)
        self._minimizer = QuineMcCluskeyMinimizer(width=width, dont_cares=dont_cares)

    def quadrant_prefix(self, cell_id: int, levels: int) -> str:
        """The first ``levels`` quadrant choices (2 bits each) of a cell's code."""
        if levels < 0 or levels > self.level_bits:
            raise ValueError(f"levels must be in [0, {self.level_bits}]")
        return self.index_of(cell_id)[: 2 * levels]


class QuadtreeEncodingScheme(EncodingScheme):
    """Hierarchy-based fixed-length baseline ([14]-style quadtree identifiers).

    The scheme needs the grid shape, not just the cell count; construct it
    with the grid dimensions and it will ignore the probability values (the
    hierarchy is probability-oblivious, like [14]).
    """

    name = "quadtree"

    def __init__(self, rows: int, cols: int):
        self.rows = rows
        self.cols = cols

    def build(self, probabilities: Sequence[float]) -> QuadtreeEncoding:
        """Build the quadtree encoding; probabilities only fix the expected cell count."""
        if len(probabilities) != self.rows * self.cols:
            raise ValueError(
                f"probability vector has {len(probabilities)} entries, expected {self.rows * self.cols}"
            )
        return QuadtreeEncoding(rows=self.rows, cols=self.cols, name=self.name)
