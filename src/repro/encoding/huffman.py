"""Binary Huffman tree construction (Algorithm 2 of the paper).

The Huffman mechanism builds the variable-length prefix code at the heart of
the paper's contribution: one leaf per grid cell, weighted by the cell's alert
likelihood; the two lightest nodes in a priority queue are repeatedly merged
under a new internal node until a single root remains.  Cells that are likely
to be alerted end up close to the root and therefore receive short codes,
which directly reduces the number of non-star symbols in the search tokens the
trusted authority issues for compact alert zones.

The construction runs in ``O(n log n)`` using a binary heap, matching the
complexity stated in the paper.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.coding_scheme import VariableLengthEncoding, build_coding_artifacts
from repro.encoding.prefix_tree import PrefixTree, PrefixTreeNode
from repro.probability.distributions import validate_probability_vector

__all__ = ["build_huffman_tree", "HuffmanEncodingScheme"]


def build_huffman_tree(probabilities: Sequence[float]) -> PrefixTree:
    """Build the binary Huffman prefix tree for a per-cell likelihood vector.

    Parameters
    ----------
    probabilities:
        ``probabilities[i]`` is the likelihood of cell ``i`` becoming part of
        an alert zone.  Values need not be normalised; zero-likelihood cells
        are allowed (they simply sink to the deepest leaves).

    Returns
    -------
    PrefixTree
        The Huffman tree; leaves carry ``cell_id`` values ``0..n-1``.

    Notes
    -----
    Ties between equal weights are broken by insertion order, which makes the
    construction deterministic for a fixed input vector -- important for
    reproducible experiments and for the trusted authority and users agreeing
    on the same code assignment.

    A single-cell domain degenerates to a root with one child, so the cell
    still receives a one-symbol code (HVE width of at least one is required).
    """
    validate_probability_vector(probabilities, allow_zero_sum=True)
    n = len(probabilities)

    leaves = [PrefixTreeNode(weight=float(p), cell_id=cell_id) for cell_id, p in enumerate(probabilities)]
    if n == 1:
        root = PrefixTreeNode(weight=leaves[0].weight)
        root.add_child(leaves[0])
        return PrefixTree(root)

    # Heap entries are (weight, tiebreak, node); the monotonically increasing
    # tiebreak keeps the construction deterministic and avoids comparing nodes.
    heap: list[tuple[float, int, PrefixTreeNode]] = []
    counter = 0
    for node in leaves:
        heapq.heappush(heap, (node.weight, counter, node))
        counter += 1

    while len(heap) > 1:
        weight_left, _, left = heapq.heappop(heap)
        weight_right, _, right = heapq.heappop(heap)
        parent = PrefixTreeNode(weight=weight_left + weight_right)
        parent.add_child(left)
        parent.add_child(right)
        heapq.heappush(heap, (parent.weight, counter, parent))
        counter += 1

    root = heap[0][2]
    return PrefixTree(root)


class HuffmanEncodingScheme(EncodingScheme):
    """The paper's proposed scheme: Huffman prefix tree + coding-tree minimization.

    ``build`` runs Algorithm 2 (Huffman tree) followed by Algorithm 1
    (index/coding-tree generation) and returns a
    :class:`~repro.encoding.coding_scheme.VariableLengthEncoding` whose token
    generation applies the deterministic minimization of Algorithm 3.
    """

    name = "huffman"

    def build(self, probabilities: Sequence[float]) -> VariableLengthEncoding:
        """Build the Huffman-based grid encoding for a likelihood vector."""
        tree = build_huffman_tree(probabilities)
        artifacts = build_coding_artifacts(tree)
        return VariableLengthEncoding(name=self.name, tree=tree, artifacts=artifacts)
