"""Algorithm 1: grid indexes and the coding tree, packaged as an encoding.

Given any prefix tree (Huffman, B-ary Huffman or balanced), Algorithm 1 of the
paper derives the two artefacts the protocol needs:

* **grid indexes** -- each leaf's prefix code padded on the right with zeros
  up to the reference length RL.  These are the strings mobile users encrypt.
  All indexes share the same length so ciphertexts are indistinguishable.
* the **coding tree** -- *every* tree node's code padded on the right with
  stars up to RL.  The trusted authority uses it to minimize tokens: a token
  for an internal node covers exactly the leaves of its subtree.

:class:`VariableLengthEncoding` wires those artefacts to the deterministic
minimization of Algorithm 3 and, for non-binary alphabets, to the bit
expansion of Section 4, presenting the uniform :class:`GridEncoding` interface
used by the protocol, experiments and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.encoding.base import GridEncoding
from repro.encoding.expansion import expand_codeword, expand_index
from repro.encoding.prefix_tree import PrefixTree
from repro.minimization.deterministic import DeterministicMinimizer

__all__ = ["CodingTree", "build_coding_artifacts", "VariableLengthEncoding"]


@dataclass(frozen=True)
class CodingTree:
    """The artefacts produced by Algorithm 1 for one prefix tree.

    Attributes
    ----------
    reference_length:
        Tree depth RL; every index and codeword has exactly this many symbols.
    alphabet_size:
        Size ``B`` of the symbol alphabet (2 for binary Huffman).
    prefix_code_by_cell:
        The raw (unpadded) prefix code of each cell -- the leaf codes.
    index_by_cell:
        Zero-padded prefix codes: the grid indexes users encrypt.
    leaf_codeword_by_cell:
        Star-padded prefix codes: the leaf entries of the coding tree.
    leaf_order:
        Position of each leaf codeword in the tree's left-to-right leaf list
        (the ``leaves`` list of Algorithm 3).
    subtree_leaf_counts:
        ``parentDict`` of Algorithm 3: for every node codeword, how many
        leaves its subtree contains.
    """

    reference_length: int
    alphabet_size: int
    prefix_code_by_cell: dict[int, str]
    index_by_cell: dict[int, str]
    leaf_codeword_by_cell: dict[int, str]
    leaf_order: dict[str, int]
    subtree_leaf_counts: dict[str, int]

    @property
    def n_cells(self) -> int:
        """Number of cells (leaves)."""
        return len(self.index_by_cell)

    def cell_of_codeword(self, codeword: str) -> int:
        """Inverse of ``leaf_codeword_by_cell`` (bijective by Theorem 2)."""
        for cell_id, candidate in self.leaf_codeword_by_cell.items():
            if candidate == codeword:
                return cell_id
        raise KeyError(f"codeword {codeword!r} does not correspond to any leaf")


def build_coding_artifacts(tree: PrefixTree) -> CodingTree:
    """Run Algorithm 1 on ``tree`` and return the grid indexes and coding tree."""
    reference_length = tree.reference_length
    alphabet_size = tree.alphabet_size

    prefix_code_by_cell: dict[int, str] = {}
    index_by_cell: dict[int, str] = {}
    leaf_codeword_by_cell: dict[int, str] = {}
    leaf_order: dict[str, int] = {}

    for position, leaf in enumerate(tree.leaves()):
        if leaf.cell_id is None:
            raise ValueError("every leaf must carry a cell id")
        code = leaf.code
        prefix_code_by_cell[leaf.cell_id] = code
        index_by_cell[leaf.cell_id] = code + "0" * (reference_length - len(code))
        codeword = code + "*" * (reference_length - len(code))
        leaf_codeword_by_cell[leaf.cell_id] = codeword
        leaf_order[codeword] = position

    subtree_leaf_counts: dict[str, int] = {}
    for node in tree.nodes():
        codeword = node.code + "*" * (reference_length - len(node.code))
        subtree_leaf_counts[codeword] = node.leaf_count()

    return CodingTree(
        reference_length=reference_length,
        alphabet_size=alphabet_size,
        prefix_code_by_cell=prefix_code_by_cell,
        index_by_cell=index_by_cell,
        leaf_codeword_by_cell=leaf_codeword_by_cell,
        leaf_order=leaf_order,
        subtree_leaf_counts=subtree_leaf_counts,
    )


class VariableLengthEncoding(GridEncoding):
    """A prefix-code grid encoding with coding-tree token minimization.

    For binary alphabets the symbol strings are already bit strings; for
    ``B``-ary alphabets indexes and token patterns are expanded to bits as per
    Section 4, so the HVE layer always sees plain ``{0, 1, *}`` strings.
    """

    def __init__(self, name: str, tree: PrefixTree, artifacts: CodingTree):
        self.name = name
        self.tree = tree
        self.artifacts = artifacts
        self._minimizer = DeterministicMinimizer(
            leaf_order=artifacts.leaf_order,
            subtree_leaf_counts=artifacts.subtree_leaf_counts,
            reference_length=artifacts.reference_length,
        )
        self._expanded = artifacts.alphabet_size > 2

    # ------------------------------------------------------------------
    # GridEncoding interface
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells covered by the encoding."""
        return self.artifacts.n_cells

    @property
    def reference_length(self) -> int:
        """HVE width in bits (symbol RL, expanded for non-binary alphabets)."""
        if self._expanded:
            return self.artifacts.reference_length * self.artifacts.alphabet_size
        return self.artifacts.reference_length

    def index_of(self, cell_id: int) -> str:
        """The padded binary index encrypted by a user located in ``cell_id``."""
        if cell_id not in self.artifacts.index_by_cell:
            raise KeyError(f"unknown cell id {cell_id}")
        if self._expanded:
            return expand_index(
                self.artifacts.prefix_code_by_cell[cell_id],
                self.artifacts.reference_length,
                self.artifacts.alphabet_size,
            )
        return self.artifacts.index_by_cell[cell_id]

    def token_patterns(self, alert_cells: Sequence[int]) -> list[str]:
        """Algorithm 3 minimization (plus Section 4 expansion for B > 2)."""
        patterns = self.symbol_token_patterns(alert_cells)
        if self._expanded:
            return [expand_codeword(p, self.artifacts.alphabet_size) for p in patterns]
        return patterns

    # ------------------------------------------------------------------
    # Symbol-level accessors (analysis / ablations)
    # ------------------------------------------------------------------
    def symbol_index_of(self, cell_id: int) -> str:
        """The unexpanded (symbol alphabet) index of a cell."""
        return self.artifacts.index_by_cell[cell_id]

    def symbol_token_patterns(self, alert_cells: Sequence[int]) -> list[str]:
        """Minimized token patterns at the symbol level (before bit expansion)."""
        codewords = []
        for cell_id in alert_cells:
            if cell_id not in self.artifacts.leaf_codeword_by_cell:
                raise KeyError(f"unknown cell id {cell_id}")
            codewords.append(self.artifacts.leaf_codeword_by_cell[cell_id])
        return self._minimizer.minimize(codewords)

    # ------------------------------------------------------------------
    # Code-length statistics (Fig. 13)
    # ------------------------------------------------------------------
    def average_code_length(self) -> float:
        """Probability-weighted average prefix-code length."""
        return self.tree.average_code_length()

    def max_code_length(self) -> int:
        """Longest prefix-code length (the symbol-level RL)."""
        return self.artifacts.reference_length

    def average_to_max_length_ratio(self) -> float:
        """The Fig. 13 metric: average code length divided by the maximum."""
        return self.average_code_length() / float(self.max_code_length())
