"""Grid encodings: how cells are mapped to the bit strings HVE operates on.

This package implements every encoding evaluated in the paper:

* :mod:`repro.encoding.prefix_tree` -- prefix-tree data structure (nodes with
  children, parent, weight and code) shared by all variable-length schemes.
* :mod:`repro.encoding.huffman` -- the binary Huffman tree of Algorithm 2 (the
  paper's core contribution).
* :mod:`repro.encoding.bary` -- the B-ary Huffman extension of Section 4.
* :mod:`repro.encoding.balanced` -- the balanced-tree variable-length baseline.
* :mod:`repro.encoding.coding_scheme` -- Algorithm 1: turning a prefix tree
  into zero-padded grid indexes and the star-padded coding tree, packaged as a
  :class:`VariableLengthEncoding`.
* :mod:`repro.encoding.expansion` -- the character-to-bit expansion used by
  non-binary alphabets (Section 4) and the granularity-refinement helper.
* :mod:`repro.encoding.fixed_length` -- the uniform fixed-length baseline of
  [14] (row-major binary codes + logic minimization).
* :mod:`repro.encoding.sgo` -- the probability-aware fixed-length baseline
  modelled after the Scaled Gray Optimizer of [23].
* :mod:`repro.encoding.base` -- the :class:`GridEncoding` interface every
  scheme implements, so the protocol and experiments are encoding-agnostic.
"""

from typing import Callable

from repro.encoding.balanced import BalancedTreeEncodingScheme, build_balanced_tree
from repro.encoding.bary import BaryHuffmanEncodingScheme, build_bary_huffman_tree
from repro.encoding.base import EncodingScheme, GridEncoding
from repro.encoding.canonical import CanonicalHuffmanEncodingScheme
from repro.encoding.coding_scheme import CodingTree, VariableLengthEncoding, build_coding_artifacts
from repro.encoding.expansion import expand_codeword, expand_index, refine_cell_indexes
from repro.encoding.fixed_length import FixedLengthEncoding, FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme, build_huffman_tree
from repro.encoding.prefix_tree import PrefixTree, PrefixTreeNode
from repro.encoding.sgo import ScaledGrayEncoding, ScaledGrayEncodingScheme
from repro.encoding.quadtree import QuadtreeEncoding, QuadtreeEncodingScheme, morton_code

# ----------------------------------------------------------------------
# Scheme registry: the deployable encodings, resolvable by short name.
# ----------------------------------------------------------------------
# The quadtree encoding is deliberately absent: it is an analysis baseline
# (Fig. 12 granularity studies), not a deployable scheme behind the pipeline
# or service APIs.
_SCHEME_FACTORIES: dict[str, Callable[[int], EncodingScheme]] = {
    "huffman": lambda alphabet_size: HuffmanEncodingScheme(),
    "huffman-canonical": lambda alphabet_size: CanonicalHuffmanEncodingScheme(),
    "huffman-bary": lambda alphabet_size: BaryHuffmanEncodingScheme(alphabet_size),
    "balanced": lambda alphabet_size: BalancedTreeEncodingScheme(),
    "fixed": lambda alphabet_size: FixedLengthEncodingScheme(),
    "sgo": lambda alphabet_size: ScaledGrayEncodingScheme(),
}

_SCHEME_ALIASES: dict[str, str] = {
    "canonical": "huffman-canonical",
    "bary": "huffman-bary",
    "b-ary": "huffman-bary",
}

#: Canonical names of every deployable encoding scheme, sorted.
SCHEME_NAMES: tuple[str, ...] = tuple(sorted(_SCHEME_FACTORIES))


def canonical_scheme_name(name: str) -> str:
    """Normalise a scheme name (case, whitespace, aliases) to its canonical form.

    Raises ``ValueError`` listing every recognised name when ``name`` is not a
    deployable scheme, so a typo in a config file or CLI flag tells the
    operator what the valid choices are rather than only echoing the mistake.
    """
    normalized = name.strip().lower()
    normalized = _SCHEME_ALIASES.get(normalized, normalized)
    if normalized not in _SCHEME_FACTORIES:
        aliases = ", ".join(f"{alias!r} (= {target})" for alias, target in sorted(_SCHEME_ALIASES.items()))
        raise ValueError(
            f"unknown encoding scheme {name!r}; expected one of {list(SCHEME_NAMES)} "
            f"(aliases: {aliases})"
        )
    return normalized


def scheme_by_name(name: str, alphabet_size: int = 3) -> EncodingScheme:
    """Resolve an encoding scheme from a short name.

    Recognised names: ``"huffman"`` (default proposal), ``"huffman-bary"``
    (Section 4 extension, using ``alphabet_size``), ``"huffman-canonical"``
    (publication-friendly canonical codewords), ``"balanced"``, ``"fixed"``
    ([14] baseline) and ``"sgo"`` ([23] baseline), plus the aliases
    ``"canonical"``, ``"bary"`` and ``"b-ary"``.
    """
    return _SCHEME_FACTORIES[canonical_scheme_name(name)](alphabet_size)


__all__ = [
    "SCHEME_NAMES",
    "canonical_scheme_name",
    "scheme_by_name",

    "QuadtreeEncoding",
    "QuadtreeEncodingScheme",
    "morton_code",

    "CanonicalHuffmanEncodingScheme",
    "EncodingScheme",
    "GridEncoding",
    "PrefixTree",
    "PrefixTreeNode",
    "build_huffman_tree",
    "HuffmanEncodingScheme",
    "build_bary_huffman_tree",
    "BaryHuffmanEncodingScheme",
    "build_balanced_tree",
    "BalancedTreeEncodingScheme",
    "CodingTree",
    "VariableLengthEncoding",
    "build_coding_artifacts",
    "expand_codeword",
    "expand_index",
    "refine_cell_indexes",
    "FixedLengthEncoding",
    "FixedLengthEncodingScheme",
    "ScaledGrayEncoding",
    "ScaledGrayEncodingScheme",
]
