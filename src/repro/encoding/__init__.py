"""Grid encodings: how cells are mapped to the bit strings HVE operates on.

This package implements every encoding evaluated in the paper:

* :mod:`repro.encoding.prefix_tree` -- prefix-tree data structure (nodes with
  children, parent, weight and code) shared by all variable-length schemes.
* :mod:`repro.encoding.huffman` -- the binary Huffman tree of Algorithm 2 (the
  paper's core contribution).
* :mod:`repro.encoding.bary` -- the B-ary Huffman extension of Section 4.
* :mod:`repro.encoding.balanced` -- the balanced-tree variable-length baseline.
* :mod:`repro.encoding.coding_scheme` -- Algorithm 1: turning a prefix tree
  into zero-padded grid indexes and the star-padded coding tree, packaged as a
  :class:`VariableLengthEncoding`.
* :mod:`repro.encoding.expansion` -- the character-to-bit expansion used by
  non-binary alphabets (Section 4) and the granularity-refinement helper.
* :mod:`repro.encoding.fixed_length` -- the uniform fixed-length baseline of
  [14] (row-major binary codes + logic minimization).
* :mod:`repro.encoding.sgo` -- the probability-aware fixed-length baseline
  modelled after the Scaled Gray Optimizer of [23].
* :mod:`repro.encoding.base` -- the :class:`GridEncoding` interface every
  scheme implements, so the protocol and experiments are encoding-agnostic.
"""

from repro.encoding.balanced import BalancedTreeEncodingScheme, build_balanced_tree
from repro.encoding.bary import BaryHuffmanEncodingScheme, build_bary_huffman_tree
from repro.encoding.base import EncodingScheme, GridEncoding
from repro.encoding.coding_scheme import CodingTree, VariableLengthEncoding, build_coding_artifacts
from repro.encoding.expansion import expand_codeword, expand_index, refine_cell_indexes
from repro.encoding.fixed_length import FixedLengthEncoding, FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme, build_huffman_tree
from repro.encoding.prefix_tree import PrefixTree, PrefixTreeNode
from repro.encoding.sgo import ScaledGrayEncoding, ScaledGrayEncodingScheme
from repro.encoding.quadtree import QuadtreeEncoding, QuadtreeEncodingScheme, morton_code

__all__ = [
    "QuadtreeEncoding",
    "QuadtreeEncodingScheme",
    "morton_code",

    "EncodingScheme",
    "GridEncoding",
    "PrefixTree",
    "PrefixTreeNode",
    "build_huffman_tree",
    "HuffmanEncodingScheme",
    "build_bary_huffman_tree",
    "BaryHuffmanEncodingScheme",
    "build_balanced_tree",
    "BalancedTreeEncodingScheme",
    "CodingTree",
    "VariableLengthEncoding",
    "build_coding_artifacts",
    "expand_codeword",
    "expand_index",
    "refine_cell_indexes",
    "FixedLengthEncoding",
    "FixedLengthEncodingScheme",
    "ScaledGrayEncoding",
    "ScaledGrayEncodingScheme",
]
