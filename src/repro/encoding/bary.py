"""B-ary Huffman encoding (Section 4 of the paper).

Extending the alphabet from ``{0, 1}`` to ``{0, ..., B-1}`` produces shallower
trees (Theorem 3 bounds the depth by ``ceil((n-1)/(B-1))``), shorter symbol
codes and -- after the one-hot bit expansion -- tokens with a single non-star
bit per real symbol.  The construction groups the ``B`` least probable nodes
at every step; as in the classic B-ary Huffman algorithm, dummy zero-weight
nodes are added so that the final merge combines exactly ``B`` nodes, which
keeps the code optimal.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.coding_scheme import VariableLengthEncoding, build_coding_artifacts
from repro.encoding.prefix_tree import PrefixTree, PrefixTreeNode
from repro.probability.distributions import validate_probability_vector

__all__ = ["build_bary_huffman_tree", "BaryHuffmanEncodingScheme"]


def build_bary_huffman_tree(probabilities: Sequence[float], alphabet_size: int) -> PrefixTree:
    """Build a B-ary Huffman prefix tree.

    Parameters
    ----------
    probabilities:
        Per-cell alert likelihoods (need not be normalised).
    alphabet_size:
        The alphabet size ``B``; must be at least 2.  ``B = 2`` reduces to the
        binary construction of Algorithm 2.
    """
    validate_probability_vector(probabilities, allow_zero_sum=True)
    if alphabet_size < 2:
        raise ValueError(f"alphabet_size must be >= 2, got {alphabet_size}")
    n = len(probabilities)

    leaves = [PrefixTreeNode(weight=float(p), cell_id=cell_id) for cell_id, p in enumerate(probabilities)]
    if n == 1:
        root = PrefixTreeNode(weight=leaves[0].weight)
        root.add_child(leaves[0])
        return PrefixTree(root, alphabet_size=alphabet_size)

    heap: list[tuple[float, int, PrefixTreeNode]] = []
    counter = 0
    for node in leaves:
        heapq.heappush(heap, (node.weight, counter, node))
        counter += 1

    # Pad with zero-weight dummy nodes so that (n_total - 1) % (B - 1) == 0,
    # guaranteeing every merge (including the last) takes exactly B nodes.
    n_dummies = (1 - n) % (alphabet_size - 1)
    for _ in range(n_dummies):
        dummy = PrefixTreeNode(weight=0.0, cell_id=None)
        heapq.heappush(heap, (0.0, counter, dummy))
        counter += 1

    while len(heap) > 1:
        group = [heapq.heappop(heap) for _ in range(min(alphabet_size, len(heap)))]
        parent = PrefixTreeNode(weight=sum(weight for weight, _, _ in group))
        for _, _, child in group:
            parent.add_child(child)
        heapq.heappush(heap, (parent.weight, counter, parent))
        counter += 1

    root = heap[0][2]
    _prune_dummy_leaves(root)
    return PrefixTree(root, alphabet_size=alphabet_size)


def _prune_dummy_leaves(node: PrefixTreeNode) -> bool:
    """Remove dummy (cell-less) leaves introduced for arity padding.

    Returns True if ``node`` itself should be removed from its parent.
    """
    if node.is_leaf:
        return node.cell_id is None
    node.children = [child for child in node.children if not _prune_dummy_leaves(child)]
    # An internal node can lose all children only if all were dummies.
    return not node.children


class BaryHuffmanEncodingScheme(EncodingScheme):
    """B-ary Huffman tree + Algorithm 3 minimization + Section 4 bit expansion."""

    def __init__(self, alphabet_size: int):
        if alphabet_size < 2:
            raise ValueError(f"alphabet_size must be >= 2, got {alphabet_size}")
        self.alphabet_size = alphabet_size
        self.name = f"huffman-{alphabet_size}ary"

    def build(self, probabilities: Sequence[float]) -> VariableLengthEncoding:
        """Build the B-ary Huffman grid encoding for a likelihood vector."""
        tree = build_bary_huffman_tree(probabilities, self.alphabet_size)
        artifacts = build_coding_artifacts(tree)
        return VariableLengthEncoding(name=self.name, tree=tree, artifacts=artifacts)
