"""High-level public API for the secure location-alert library.

Most applications only need :class:`~repro.core.pipeline.SecureAlertPipeline`,
which packages grid construction, probability modelling, encoding selection,
key setup and the user / alert workflow behind a handful of methods.  Lower
layers (crypto, encoding, minimization, protocol) remain importable for
advanced use and for the experiments.
"""

from repro.core.pipeline import PipelineConfig, SecureAlertPipeline

__all__ = ["PipelineConfig", "SecureAlertPipeline"]
