"""The :class:`SecureAlertPipeline`: the library's front door.

A pipeline bundles everything a deployment needs:

* a :class:`~repro.grid.grid.Grid` over the served area,
* a per-cell alert-likelihood vector (from any source: sigmoid model, trained
  crime model, domain knowledge),
* an encoding scheme (Huffman by default -- the paper's proposal),
* the HVE key material and the three protocol parties.

Typical use (see ``examples/quickstart.py``)::

    pipeline = SecureAlertPipeline.from_probabilities(grid, probabilities)
    pipeline.subscribe("alice", Point(120.0, 80.0))
    report = pipeline.raise_alert_at(Point(110.0, 90.0), radius=25.0, alert_id="leak-1")
    print(report.notified_users)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.encoding.balanced import BalancedTreeEncodingScheme
from repro.encoding.bary import BaryHuffmanEncodingScheme
from repro.encoding.base import EncodingScheme
from repro.encoding.canonical import CanonicalHuffmanEncodingScheme
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.encoding.sgo import ScaledGrayEncodingScheme
from repro.grid.alert_zone import AlertZone, circular_alert_zone
from repro.grid.geometry import Point
from repro.grid.grid import Grid
from repro.protocol.alert_system import SecureAlertSystem, SystemInitStats
from repro.protocol.matching import MatchingOptions
from repro.protocol.messages import Notification

__all__ = ["PipelineConfig", "AlertReport", "SecureAlertPipeline", "scheme_by_name"]


def scheme_by_name(name: str, alphabet_size: int = 3) -> EncodingScheme:
    """Resolve an encoding scheme from a short name.

    Recognised names: ``"huffman"`` (default proposal), ``"huffman-bary"``
    (Section 4 extension, using ``alphabet_size``), ``"huffman-canonical"``
    (publication-friendly canonical codewords), ``"balanced"``, ``"fixed"``
    ([14] baseline) and ``"sgo"`` ([23] baseline).
    """
    normalized = name.strip().lower()
    if normalized == "huffman":
        return HuffmanEncodingScheme()
    if normalized in ("huffman-canonical", "canonical"):
        return CanonicalHuffmanEncodingScheme()
    if normalized in ("huffman-bary", "bary", "b-ary"):
        return BaryHuffmanEncodingScheme(alphabet_size)
    if normalized == "balanced":
        return BalancedTreeEncodingScheme()
    if normalized == "fixed":
        return FixedLengthEncodingScheme()
    if normalized == "sgo":
        return ScaledGrayEncodingScheme()
    raise ValueError(f"unknown encoding scheme {name!r}")


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables of a :class:`SecureAlertPipeline`.

    ``matching_strategy`` selects the service provider's evaluation path
    (``"planned"`` is the optimized default; ``"naive"`` is the element-wise
    parity path); ``workers`` enables chunked multi-worker matching over the
    ciphertext store (off at the default of 1) and ``executor`` picks the
    pool flavour for it (``"thread"`` shares the group in-process,
    ``"process"`` ships work to worker processes for real multi-core
    scaling).  ``crypto_backend`` forces a crypto arithmetic backend by name
    (``None`` auto-selects: ``gmpy2`` when installed, the pure-Python
    ``reference`` backend otherwise).
    """

    scheme: str = "huffman"
    alphabet_size: int = 3
    prime_bits: int = 64
    seed: Optional[int] = None
    matching_strategy: str = "planned"
    workers: int = 1
    executor: str = "thread"
    crypto_backend: Optional[str] = None


@dataclass(frozen=True)
class AlertReport:
    """Outcome of one alert declaration."""

    alert_id: str
    zone: AlertZone
    notified_users: tuple[str, ...]
    tokens_issued: int
    pairings_spent: int


class SecureAlertPipeline:
    """End-to-end secure location alerts behind a minimal API."""

    def __init__(self, system: SecureAlertSystem, config: PipelineConfig):
        self._system = system
        self.config = config

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_probabilities(
        cls,
        grid: Grid,
        probabilities: Sequence[float],
        config: Optional[PipelineConfig] = None,
    ) -> "SecureAlertPipeline":
        """Build a pipeline from a grid and per-cell alert likelihoods."""
        config = config or PipelineConfig()
        scheme = scheme_by_name(config.scheme, config.alphabet_size)
        rng = random.Random(config.seed)
        system = SecureAlertSystem(
            grid=grid,
            probabilities=probabilities,
            scheme=scheme,
            prime_bits=config.prime_bits,
            rng=rng,
            matching=MatchingOptions(
                strategy=config.matching_strategy,
                workers=config.workers,
                executor=config.executor,
            ),
            backend=config.crypto_backend,
        )
        return cls(system, config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        """The spatial grid served by this deployment."""
        return self._system.grid

    @property
    def init_stats(self) -> SystemInitStats:
        """Timing of the one-time initialization (encoding + key setup)."""
        return self._system.init_stats

    @property
    def pairing_count(self) -> int:
        """Total bilinear pairings evaluated so far."""
        return self._system.pairing_count

    @property
    def subscriber_count(self) -> int:
        """Number of users with a stored encrypted location."""
        return self._system.provider.subscriber_count

    def encoding_name(self) -> str:
        """Name of the deployed encoding scheme."""
        return self._system.authority.encoding.name

    # ------------------------------------------------------------------
    # User lifecycle
    # ------------------------------------------------------------------
    def subscribe(self, user_id: str, location: Point) -> None:
        """Register a user and upload their first encrypted location."""
        self._system.register_user(user_id, location)

    def report_location(self, user_id: str, location: Point) -> None:
        """Record a user's movement (uploads a fresh ciphertext)."""
        self._system.move_user(user_id, location)

    # ------------------------------------------------------------------
    # Alerts
    # ------------------------------------------------------------------
    def raise_alert(self, zone: AlertZone, alert_id: str, description: str = "") -> AlertReport:
        """Declare an alert over an explicit set of cells."""
        pairings_before = self._system.pairing_count
        batch = self._system.issue_token_batch(zone, alert_id)
        notifications = self._system.provider.process_alert(batch, description=description)
        return AlertReport(
            alert_id=alert_id,
            zone=zone,
            notified_users=tuple(sorted(n.user_id for n in notifications)),
            tokens_issued=len(batch.tokens),
            pairings_spent=self._system.pairing_count - pairings_before,
        )

    def raise_alert_at(
        self,
        epicenter: Point,
        radius: float,
        alert_id: str,
        description: str = "",
    ) -> AlertReport:
        """Declare a circular alert zone around an event epicenter."""
        zone = circular_alert_zone(self.grid, epicenter, radius, label=alert_id)
        return self.raise_alert(zone, alert_id, description=description)

    # ------------------------------------------------------------------
    # Ground truth (testing / demo support)
    # ------------------------------------------------------------------
    def users_actually_in_zone(self, zone: AlertZone) -> list[str]:
        """Plaintext ground truth of which subscribed users are inside ``zone``."""
        return self._system.users_in_zone(zone)
