"""The :class:`SecureAlertPipeline`: the library's call-oriented front door.

A pipeline bundles everything a deployment needs:

* a :class:`~repro.grid.grid.Grid` over the served area,
* a per-cell alert-likelihood vector (from any source: sigmoid model, trained
  crime model, domain knowledge),
* an encoding scheme (Huffman by default -- the paper's proposal),
* the HVE key material and the three protocol parties.

Typical use (see ``examples/quickstart_legacy.py``)::

    pipeline = SecureAlertPipeline.from_probabilities(grid, probabilities)
    pipeline.subscribe("alice", Point(120.0, 80.0))
    report = pipeline.raise_alert_at(Point(110.0, 90.0), radius=25.0, alert_id="leak-1")
    print(report.notified_users)

Since the service redesign the pipeline is a thin adapter over
:class:`~repro.service.service.AlertService`: every entry point keeps its
signature and its exact behaviour (parity-tested down to pairing counts), but
the work is done by a session underneath.  New code -- anything long-lived,
multi-zone or executor-tuned -- should talk to the session API directly; the
:attr:`service` property exposes it for migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.encoding import SCHEME_NAMES, scheme_by_name
from repro.grid.alert_zone import AlertZone, circular_alert_zone
from repro.grid.geometry import Point
from repro.grid.grid import Grid
from repro.protocol.alert_system import SecureAlertSystem, SystemInitStats
from repro.service.config import ServiceConfig
from repro.service.requests import Move, PublishZone, Subscribe
from repro.service.service import AlertService

__all__ = ["PipelineConfig", "AlertReport", "SecureAlertPipeline", "scheme_by_name", "SCHEME_NAMES"]


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables of a :class:`SecureAlertPipeline`.

    ``matching_strategy`` selects the service provider's evaluation path
    (``"planned"`` is the optimized default; ``"naive"`` is the element-wise
    parity path); ``workers`` enables chunked multi-worker matching over the
    ciphertext store (off at the default of 1) and ``executor`` picks the
    pool flavour for it (``"thread"`` shares the group in-process,
    ``"process"`` ships work to worker processes for real multi-core
    scaling).  ``shards`` > 0 deploys the sharded ciphertext store so the
    process executor ships each shard to workers once instead of re-wiring
    every ciphertext per call (see
    :class:`~repro.protocol.shards.ShardedCiphertextStore`).
    ``crypto_backend`` forces a crypto arithmetic backend by name
    (``None`` auto-selects: ``gmpy2`` when installed, the pure-Python
    ``reference`` backend otherwise).

    :meth:`ServiceConfig.from_pipeline <repro.service.config.ServiceConfig.from_pipeline>`
    translates this config onto the unified service surface.
    """

    scheme: str = "huffman"
    alphabet_size: int = 3
    prime_bits: int = 64
    seed: Optional[int] = None
    matching_strategy: str = "planned"
    workers: int = 1
    executor: str = "thread"
    crypto_backend: Optional[str] = None
    shards: int = 0


@dataclass(frozen=True)
class AlertReport:
    """Outcome of one alert declaration."""

    alert_id: str
    zone: AlertZone
    notified_users: tuple[str, ...]
    tokens_issued: int
    pairings_spent: int


class SecureAlertPipeline:
    """End-to-end secure location alerts behind a minimal API.

    A thin adapter over :class:`~repro.service.service.AlertService`: each
    alert is a one-shot ``PublishZone`` request against the session.  Accepts
    either a pre-built session or (legacy) a bare
    :class:`~repro.protocol.alert_system.SecureAlertSystem`, which is adopted
    into a fresh session.
    """

    def __init__(self, system: Union[AlertService, SecureAlertSystem], config: PipelineConfig):
        if isinstance(system, AlertService):
            self._service = system
        else:
            self._service = AlertService(config=ServiceConfig.from_pipeline(config), system=system)
        self._system = self._service.system
        self.config = config

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_probabilities(
        cls,
        grid: Grid,
        probabilities: Sequence[float],
        config: Optional[PipelineConfig] = None,
    ) -> "SecureAlertPipeline":
        """Build a pipeline from a grid and per-cell alert likelihoods."""
        config = config or PipelineConfig()
        service = AlertService(grid, probabilities, config=ServiceConfig.from_pipeline(config))
        return cls(service, config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def service(self) -> AlertService:
        """The underlying session (the migration path to the service API)."""
        return self._service

    @property
    def grid(self) -> Grid:
        """The spatial grid served by this deployment."""
        return self._service.grid

    @property
    def init_stats(self) -> SystemInitStats:
        """Timing of the one-time initialization (encoding + key setup)."""
        return self._service.init_stats

    @property
    def pairing_count(self) -> int:
        """Total bilinear pairings evaluated so far."""
        return self._service.pairing_count

    @property
    def subscriber_count(self) -> int:
        """Number of users with a stored encrypted location."""
        return self._service.subscriber_count

    def encoding_name(self) -> str:
        """Name of the deployed encoding scheme."""
        return self._service.encoding_name()

    # ------------------------------------------------------------------
    # User lifecycle
    # ------------------------------------------------------------------
    def subscribe(self, user_id: str, location: Point) -> None:
        """Register a user and upload their first encrypted location."""
        self._service.subscribe(Subscribe(user_id=user_id, location=location))

    def report_location(self, user_id: str, location: Point) -> None:
        """Record a user's movement (uploads a fresh ciphertext)."""
        self._service.move(Move(user_id=user_id, location=location))

    # ------------------------------------------------------------------
    # Alerts
    # ------------------------------------------------------------------
    def raise_alert(self, zone: AlertZone, alert_id: str, description: str = "") -> AlertReport:
        """Declare an alert over an explicit set of cells."""
        report = self._service.publish_zone(
            PublishZone(alert_id=alert_id, zone=zone, description=description, standing=False)
        )
        return AlertReport(
            alert_id=alert_id,
            zone=zone,
            notified_users=tuple(sorted(n.user_id for n in report.notifications)),
            tokens_issued=report.tokens_evaluated,
            pairings_spent=report.pairings_spent,
        )

    def raise_alert_at(
        self,
        epicenter: Point,
        radius: float,
        alert_id: str,
        description: str = "",
    ) -> AlertReport:
        """Declare a circular alert zone around an event epicenter."""
        zone = circular_alert_zone(self.grid, epicenter, radius, label=alert_id)
        return self.raise_alert(zone, alert_id, description=description)

    # ------------------------------------------------------------------
    # Ground truth (testing / demo support)
    # ------------------------------------------------------------------
    def users_actually_in_zone(self, zone: AlertZone) -> list[str]:
        """Plaintext ground truth of which subscribed users are inside ``zone``."""
        return self._service.users_actually_in_zone(zone)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the session (its persistent executor pool, if any)."""
        self._service.close()

    def __enter__(self) -> "SecureAlertPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
