"""Fig. 11: mixed workloads W1-W4 on the synthetic dataset.

The paper mixes short-radius (20 m) and long-radius (300 m) alert zones in
ratios 90/10 (W1), 75/25 (W2), 25/75 (W3) and 10/90 (W4) for sigmoid settings
(a=0.9, b=100) and (a=0.99, b=100).

Expected shape (paper): the Huffman scheme outperforms SGO in every mix, with
the largest margin for the mostly-compact mix W1 (absolute improvements of up
to ~40%).
"""

import pytest

from benchmarks.conftest import publish_table
from repro.analysis.experiments import mixed_workload_comparison
from repro.datasets.synthetic import make_synthetic_scenario

NUM_ZONES = 40
PANELS = [(0.90, 100.0), (0.99, 100.0)]


@pytest.mark.parametrize("a,b", PANELS, ids=[f"a={a:g}-b={b:g}" for a, b in PANELS])
def test_fig11_mixed_workloads(benchmark, a, b):
    scenario = make_synthetic_scenario(rows=32, cols=32, sigmoid_a=a, sigmoid_b=b, seed=2023)

    def run():
        return mixed_workload_comparison(
            scenario.grid, scenario.probabilities, num_zones=NUM_ZONES, seed=2024
        )

    comparisons = benchmark(run)

    rows = []
    for comparison in comparisons:
        rows.append(
            {
                "workload": comparison.workload,
                "fixed_pairings": comparison.cost_of("fixed").pairings,
                "huffman_improvement_pct": round(comparison.improvement_of("huffman"), 1),
                "sgo_improvement_pct": round(comparison.improvement_of("sgo"), 1),
                "balanced_improvement_pct": round(comparison.improvement_of("balanced"), 1),
            }
        )
    publish_table(
        f"fig11_mixed_a{a:g}_b{b:g}",
        f"Fig. 11 - mixed workloads W1-W4, sigmoid(a={a:g}, b={b:g})",
        rows,
    )

    # Shape checks mirroring the paper: Huffman beats SGO on every mix, and the
    # mostly-compact W1 mix achieves a positive improvement.
    for comparison in comparisons:
        assert comparison.improvement_of("huffman") >= comparison.improvement_of("sgo")
    w1 = comparisons[0]
    assert w1.improvement_of("huffman") > 0.0
