"""Ablation: how much does token minimization itself contribute?

DESIGN.md calls out two design choices whose impact should be quantified:

* the deterministic minimization of Algorithm 3 versus issuing one token per
  alerted cell (no aggregation) for the Huffman encoding;
* the Quine-McCluskey aggregation versus no aggregation for the fixed-length
  baseline ([14] without minimization would pay RL non-star bits per cell).

Both are measured on the standard synthetic compact-zone workload.
"""

from benchmarks.conftest import publish_table
from repro.crypto.counting import pairing_cost_of_tokens
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme

RADII = (20.0, 100.0, 300.0)
NUM_ZONES = 15


def _unminimized_cost_variable(encoding, zones) -> int:
    """Cost of issuing one full leaf-codeword token per alerted cell."""
    total = 0
    for zone in zones:
        codewords = [encoding.artifacts.leaf_codeword_by_cell[c] for c in zone.cell_ids]
        total += pairing_cost_of_tokens(codewords)
    return total


def _unminimized_cost_fixed(encoding, zones) -> int:
    """Cost of issuing one full-length token per alerted cell (no aggregation)."""
    width = encoding.reference_length
    total = 0
    for zone in zones:
        total += len(zone.cell_ids) * (1 + 2 * width)
    return total


def test_ablation_minimization(benchmark):
    scenario = make_synthetic_scenario(rows=32, cols=32, sigmoid_a=0.95, sigmoid_b=100.0, seed=2030)
    huffman = HuffmanEncodingScheme().build(scenario.probabilities)
    fixed = FixedLengthEncodingScheme().build(scenario.probabilities)
    # Drawn once, outside the timed body: scenario.workloads shares one
    # stateful RNG, and pytest-benchmark repeats run() a timing-dependent
    # number of rounds -- sampling inside would make the published token
    # counts depend on how many rounds happened to run.
    zones_by_radius = {
        radius: list(scenario.workloads.triggered_radius_workload(radius, NUM_ZONES))
        for radius in RADII
    }

    def run():
        rows = []
        for radius in RADII:
            zones = zones_by_radius[radius]
            huffman_min = sum(
                pairing_cost_of_tokens(huffman.token_patterns(list(zone.cell_ids))) for zone in zones
            )
            fixed_min = sum(
                pairing_cost_of_tokens(fixed.token_patterns(list(zone.cell_ids))) for zone in zones
            )
            rows.append(
                {
                    "radius_m": int(radius),
                    "huffman_minimized": huffman_min,
                    "huffman_per_cell_tokens": _unminimized_cost_variable(huffman, zones),
                    "fixed_minimized": fixed_min,
                    "fixed_per_cell_tokens": _unminimized_cost_fixed(fixed, zones),
                }
            )
        return rows

    rows = benchmark(run)
    publish_table(
        "ablation_minimization",
        "Ablation - token minimization (Algorithm 3 / Quine-McCluskey) vs one token per alerted cell",
        rows,
    )

    for row in rows:
        # Minimization never increases cost and the Huffman encoding stays
        # cheaper than the fixed-length one even without aggregation (shorter
        # codes for the likely-alerted cells).
        assert row["huffman_minimized"] <= row["huffman_per_cell_tokens"]
        assert row["fixed_minimized"] <= row["fixed_per_cell_tokens"]
        assert row["huffman_per_cell_tokens"] < row["fixed_per_cell_tokens"]
