"""Ablation: communication overhead of each encoding (Section 5 in bytes).

Section 5 analyses the padding-induced length overhead of variable-length
codes analytically; this benchmark measures the resulting wire payloads with
the actual serialization format: public-key size, per-report ciphertext size
and per-alert token traffic, for every encoding scheme, on the standard
synthetic scenario.
"""

from benchmarks.conftest import publish_table
from repro.analysis.communication import profile_encoding
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.balanced import BalancedTreeEncodingScheme
from repro.encoding.bary import BaryHuffmanEncodingScheme
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.encoding.sgo import ScaledGrayEncodingScheme


def test_ablation_communication_overhead(benchmark):
    scenario = make_synthetic_scenario(rows=16, cols=16, sigmoid_a=0.95, sigmoid_b=100.0, seed=2050, extent_meters=1600.0)
    zone = scenario.workloads.triggered_radius_workload(150.0, 1).zones[0]
    schemes = {
        "fixed": FixedLengthEncodingScheme(),
        "sgo": ScaledGrayEncodingScheme(),
        "balanced": BalancedTreeEncodingScheme(),
        "huffman": HuffmanEncodingScheme(),
        "huffman-3ary": BaryHuffmanEncodingScheme(3),
    }

    def run():
        profiles = []
        for name, scheme in schemes.items():
            encoding = scheme.build(scenario.probabilities)
            profiles.append(profile_encoding(encoding, list(zone.cell_ids), prime_bits=64, seed=2051))
        return profiles

    profiles = benchmark(run)
    publish_table(
        "ablation_communication",
        "Ablation - wire payload sizes per encoding (one compact alert zone)",
        [profile.as_row() for profile in profiles],
    )

    by_name = {profile.scheme: profile for profile in profiles}
    # The fixed-length code has the narrowest ciphertexts; the Huffman padding
    # makes ciphertexts larger (the Section 5 trade-off) while its per-alert
    # token traffic is no larger than the fixed scheme's for compact zones.
    assert by_name["fixed"].ciphertext_bytes <= by_name["huffman"].ciphertext_bytes
    assert by_name["huffman"].hve_width_bits >= by_name["fixed"].hve_width_bits
