"""Fig. 9: evaluation on the (Chicago crime) real dataset.

Panels (a) and (b) of Fig. 9 report, per alert-zone radius, the pairing cost
and the improvement over the fixed-length baseline of [14] for the Huffman
scheme, the SGO baseline of [23] and the balanced-tree baseline, on a 32x32
grid whose cell likelihoods come from a logistic-regression model trained on
the crime data.

Expected shape (paper): Huffman achieves the best improvement for small radii
(up to ~15%); the balanced tree provides essentially no improvement; SGO does
not help for small radii.
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import radius_sweep_comparison

#: Radii in meters.  Chicago cells are roughly 1.1 x 1.3 km, so this sweep
#: spans single-cell zones up to zones of a few dozen cells.
RADII = (100.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0)
NUM_ZONES = 20
SCHEMES = ("huffman", "sgo", "balanced")


def test_fig09_real_dataset_sweep(benchmark, chicago_grid, chicago_likelihoods):
    probabilities, _ = chicago_likelihoods

    def run():
        return radius_sweep_comparison(
            chicago_grid,
            probabilities,
            radii=RADII,
            num_zones=NUM_ZONES,
            seed=2021,
        )

    sweep = benchmark(run)

    rows = []
    for radius, comparison in zip(sweep.radii, sweep.comparisons):
        row = {"radius_m": int(radius), "fixed_pairings": comparison.cost_of("fixed").pairings}
        for scheme in SCHEMES:
            row[f"{scheme}_pairings"] = comparison.cost_of(scheme).pairings
            row[f"{scheme}_improvement_pct"] = round(comparison.improvement_of(scheme), 1)
        rows.append(row)
    publish_table("fig09_real_dataset", "Fig. 9 - Chicago crime dataset, improvement vs alert-zone radius", rows)

    huffman = sweep.improvement_series("huffman")
    balanced = sweep.improvement_series("balanced")
    sgo = sweep.improvement_series("sgo")

    # Shape checks mirroring the paper's observations.
    # 1. Huffman provides a positive improvement for compact zones.
    assert max(huffman[:3]) > 0.0
    # 2. Huffman dominates the balanced-tree baseline on average.
    assert sum(huffman) / len(huffman) > sum(balanced) / len(balanced)
    # 3. SGO yields no improvement for the smallest radii.
    assert abs(sgo[0]) < 10.0
