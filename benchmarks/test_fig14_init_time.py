"""Fig. 14: system initialization time vs grid size.

The paper measures the one-time cost of generating the grid indexes and the
coding tree when the system is deployed, for increasing grid sizes (a=0.95,
b=20).  The cost grows with the number of cells; it does not affect run-time
matching performance.  Absolute values depend on the machine (the paper
reports minutes for the largest grids on 2014-era hardware); we check the
growth trend and report our own timings.
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import init_timing_sweep
from repro.encoding.balanced import BalancedTreeEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.encoding.sgo import ScaledGrayEncodingScheme

GRID_SIZES = (16, 32, 64, 96)


def test_fig14_initialization_time(benchmark):
    schemes = {
        "huffman": HuffmanEncodingScheme(),
        "balanced": BalancedTreeEncodingScheme(),
        "sgo": ScaledGrayEncodingScheme(),
    }

    points = benchmark(
        init_timing_sweep,
        grid_sizes=GRID_SIZES,
        sigmoid_a=0.95,
        sigmoid_b=20.0,
        seed=2027,
        schemes=schemes,
    )

    rows = [
        {
            "n_cells": point.n_cells,
            "scheme": point.scheme,
            "build_seconds": round(point.build_seconds, 4),
            "reference_length_bits": point.reference_length,
        }
        for point in points
    ]
    publish_table("fig14_init_time", "Fig. 14 - system initialization time (encoding construction)", rows)

    # Shape check: for the Huffman scheme, initialization time grows with the
    # number of cells (compare the smallest and the largest grid).
    huffman_points = [p for p in points if p.scheme == "huffman"]
    assert huffman_points[-1].build_seconds >= huffman_points[0].build_seconds
    # Every build completed and produced a usable reference length.
    assert all(point.reference_length >= 1 for point in points)
