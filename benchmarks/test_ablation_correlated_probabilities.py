"""Ablation: correlated (smooth / Markov) likelihood fields vs the i.i.d. sigmoid.

Section 3.2 notes that for grids with highly correlated cell probabilities a
stationary-distribution model yields a more accurate probabilistic model, and
the conclusions list correlated models as future work.  This ablation runs the
standard radius sweep on three likelihood sources over the same grid:

* the paper's i.i.d. sigmoid field (a = 0.95, b = 100);
* a spatially smoothed (Gaussian) random field with matched skew;
* the stationary distribution of an attractiveness-biased random walk
  (:class:`GridMarkovModel`).

The measured effect (recorded in EXPERIMENTS.md): the Huffman advantage tracks
the *skew* of the likelihood distribution, not its spatial correlation.  The
i.i.d. sigmoid field is extremely skewed (most cells essentially never alert)
and shows the paper's large gains; the smoother fields have many cells of
moderate likelihood, whose Huffman codes are no shorter than the fixed-length
ones, so the gains shrink towards zero (and can go negative once moderate
cells dominate the alerted sets).  This quantifies the paper's remark that the
technique is aimed at skewed likelihood landscapes.
"""

import random

from benchmarks.conftest import publish_table
from repro.analysis.experiments import radius_sweep_comparison
from repro.grid.geometry import BoundingBox
from repro.grid.grid import Grid
from repro.probability.markov import GridMarkovModel, spatially_correlated_probabilities
from repro.probability.sigmoid import SigmoidProbabilityModel

RADII = (20.0, 100.0, 300.0)
NUM_ZONES = 10
GRID_SIZE = 24


def _likelihood_sources(grid: Grid) -> dict[str, list[float]]:
    sigmoid = SigmoidProbabilityModel(a=0.95, b=100.0, seed=2060).cell_probabilities(grid.n_cells)
    smooth = spatially_correlated_probabilities(grid, correlation_cells=2.0, skew=4.0, seed=2061)
    attractiveness = spatially_correlated_probabilities(grid, correlation_cells=1.5, skew=2.0, seed=2062)
    markov = GridMarkovModel(grid, attractiveness=attractiveness, laziness=0.2).cell_probabilities()
    return {"iid-sigmoid": sigmoid, "smooth-field": smooth, "markov-stationary": markov}


def test_ablation_correlated_probabilities(benchmark):
    grid = Grid(
        rows=GRID_SIZE, cols=GRID_SIZE, bounding_box=BoundingBox(0.0, 0.0, GRID_SIZE * 100.0, GRID_SIZE * 100.0)
    )
    sources = _likelihood_sources(grid)

    def run():
        sweeps = {}
        for name, probabilities in sources.items():
            sweeps[name] = radius_sweep_comparison(
                grid, probabilities, radii=RADII, num_zones=NUM_ZONES, seed=2063
            )
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, sweep in sweeps.items():
        for radius, comparison in zip(sweep.radii, sweep.comparisons):
            rows.append(
                {
                    "likelihood_source": name,
                    "radius_m": int(radius),
                    "fixed_pairings": comparison.cost_of("fixed").pairings,
                    "huffman_improvement_pct": round(comparison.improvement_of("huffman"), 1),
                    "sgo_improvement_pct": round(comparison.improvement_of("sgo"), 1),
                }
            )
    publish_table(
        "ablation_correlated_probabilities",
        "Ablation - i.i.d. sigmoid vs spatially correlated likelihood fields",
        rows,
    )

    # The skewed i.i.d. sigmoid source shows the paper's gains at every radius;
    # the milder correlated sources must at least not break correctness (their
    # gains may legitimately approach zero -- that is the finding).
    assert all(value > 0.0 for value in sweeps["iid-sigmoid"].improvement_series("huffman"))
    skew_order = ["smooth-field", "iid-sigmoid"]
    compact_gains = [sweeps[name].improvement_series("huffman")[0] for name in skew_order]
    assert compact_gains[0] <= compact_gains[1]
