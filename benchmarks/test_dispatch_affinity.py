"""Warm-path dispatch economics: affinity + acked deltas vs the PR 4 path.

PR 4 made warm sharded-process passes cheap; this benchmark measures what the
PR 5 dispatch overhaul removes from what was left:

* ``pool.map`` scattering (a shard resident in several workers, cold hits
  after rebalances) -- gone with rendezvous-pinned worker lanes;
* floor->current delta re-shipping (a moved user re-transferred every pass
  until the floor advances) -- gone with the per-worker acked-version
  handshake.

Four flavours run the same scripted warm standing-zone workload (incremental
off, so every pass re-evaluates the full population and pairing work is
identical everywhere -- the differences are pure dispatch):

* ``unsharded/thread`` and ``sharded/thread`` -- the in-process baselines; the
  sharded store must not tax executors that never ship (asserted >= 0.95x);
* ``sharded/process/floor`` -- PR 4's path (``affinity=False``);
* ``sharded/process/affinity`` -- the dispatch overhaul (pinned lanes, acked
  deltas, in-place re-prime).

Each flavour is measured over alternating rounds (best-of), so a background
load hitting one round does not skew the comparison -- the ordering artifact
that made PR 4's table show a phantom sharded-thread regression.

Besides the human-readable table (``results/dispatch_affinity.txt``), the run
merges a ``dispatch`` section into ``results/BENCH_provider.json``: the
machine-readable per-step trajectory of the warm sharded-process session
(per-step ms, bytes shipped, resident hits) plus a CPU calibration constant.
CI regenerates it on every push and ``benchmarks/check_perf_baseline.py``
fails the build if the calibrated per-step latency regresses more than 25%
against the committed baseline -- closing the ROADMAP item on recording
provider-side throughput across PRs.
"""

import random
import time

from repro.datasets.synthetic import make_synthetic_scenario
from repro.grid.alert_zone import AlertZone
from repro.service import AlertService, Move, PublishZone, ServiceConfig, Subscribe

from .conftest import calibration_ms, merge_bench_provider, publish_table

USERS = 160
STEPS = 6
MOVERS_PER_STEP = 2
WORKERS = 2
SHARDS = 8
ROUNDS = 2
ZONE_CELLS = ((9, 10, 11, 17), (40, 41, 48))

FLAVOURS = {
    "unsharded/thread": dict(shards=0, executor="thread"),
    "sharded/thread": dict(shards=SHARDS, executor="thread"),
    "sharded/process/floor": dict(shards=SHARDS, executor="process", affinity=False),
    "sharded/process/affinity": dict(shards=SHARDS, executor="process", affinity=True),
}


def _run_flavour(scenario, overrides):
    """One scripted warm session; returns (per-pass outcomes, measurements)."""
    config = ServiceConfig(
        prime_bits=32, seed=3, workers=WORKERS, incremental=False, **overrides
    )
    rng = random.Random(11)
    evaluate_seconds = 0.0
    outcomes = []
    per_step_ms = []
    bytes_shipped = 0
    ciphertexts_shipped = 0
    resident_hits = 0
    acked_bytes = 0
    with AlertService(scenario.grid, scenario.probabilities, config=config) as service:
        for i in range(USERS):
            cell = rng.randrange(scenario.grid.n_cells)
            service.subscribe(
                Subscribe(user_id=f"user-{i:04d}", location=scenario.grid.cell_center(cell))
            )
        for index, cells in enumerate(ZONE_CELLS):
            service.publish_zone(
                PublishZone(alert_id=f"zone-{index}", zone=AlertZone(cell_ids=cells), evaluate=False)
            )
        # Warm-up: primes plan, pool/lanes and resident shards; the timed
        # window is the steady state.
        service.evaluate_standing()
        for step in range(STEPS):
            for _ in range(MOVERS_PER_STEP):
                mover = f"user-{rng.randrange(USERS):04d}"
                cell = rng.randrange(scenario.grid.n_cells)
                service.move(Move(user_id=mover, location=scenario.grid.cell_center(cell)))
            started = time.perf_counter()
            report = service.evaluate_standing()
            elapsed = time.perf_counter() - started
            evaluate_seconds += elapsed
            per_step_ms.append(round(elapsed * 1000, 3))
            outcomes.append((report.notified_users, report.pairings_spent))
            bytes_shipped += report.bytes_shipped
            ciphertexts_shipped += report.shipped_ciphertexts
            resident_hits += report.resident_hits
            acked_bytes += report.acked_delta_bytes
        stats = service.session_stats()
    return outcomes, {
        "total_s": evaluate_seconds,
        "per_step_ms": per_step_ms,
        "bytes_shipped": bytes_shipped,
        "ciphertexts_shipped": ciphertexts_shipped,
        "resident_hits": resident_hits,
        "acked_delta_bytes": acked_bytes,
        "records_serialized": stats.records_serialized,
        "pool_starts": stats.process_pool_starts,
    }


def test_dispatch_affinity_grid():
    scenario = make_synthetic_scenario(
        rows=8, cols=8, sigmoid_a=0.9, sigmoid_b=20, seed=61, extent_meters=800.0
    )
    calibration = calibration_ms()

    outcomes_by_flavour = {}
    best = {}
    # Alternating rounds: every flavour sees every phase of the host's
    # background load, and the kept measurement is its best round.
    for _ in range(ROUNDS):
        for name, overrides in FLAVOURS.items():
            outcomes, measured = _run_flavour(scenario, overrides)
            previous = outcomes_by_flavour.setdefault(name, outcomes)
            assert outcomes == previous  # deterministic across rounds
            if name not in best or measured["total_s"] < best[name]["total_s"]:
                best[name] = measured

    # Identical protocol work everywhere: same notifications, bit-exact
    # per-step pairing totals across the whole grid.
    reference = outcomes_by_flavour["unsharded/thread"]
    for name, outcomes in outcomes_by_flavour.items():
        assert outcomes == reference, f"{name} diverged from the unsharded baseline"

    rows = []
    for name, measured in best.items():
        rows.append(
            {
                "flavour": name,
                "steps": STEPS,
                "workers": WORKERS,
                "total_s": round(measured["total_s"], 3),
                "per_step_ms": round(measured["total_s"] / STEPS * 1000, 2),
                "bytes_shipped": measured["bytes_shipped"],
                "acked_delta_bytes": measured["acked_delta_bytes"],
                "ciphertexts_shipped": measured["ciphertexts_shipped"],
                "resident_hits": measured["resident_hits"],
                "pool_starts": measured["pool_starts"],
            }
        )
    floor = best["sharded/process/floor"]
    affinity = best["sharded/process/affinity"]
    for row in rows:
        if row["flavour"] == "sharded/process/affinity":
            row["speedup_vs_floor"] = round(floor["total_s"] / max(affinity["total_s"], 1e-9), 2)
        else:
            row["speedup_vs_floor"] = ""
    publish_table(
        "dispatch_affinity",
        f"Warm-path dispatch: {USERS} users, {STEPS} warm full-evaluation steps "
        f"({MOVERS_PER_STEP} moves/step), {len(ZONE_CELLS)} zones, workers={WORKERS}, "
        f"shards={SHARDS}, best of {ROUNDS} alternating rounds (incremental off; pairing "
        f"work identical, differences are pure dispatch)",
        rows,
    )

    # Acceptance bar 1: warm acked-delta passes ship strictly fewer bytes
    # than PR 4's floor-based deltas (which re-send every moved user each
    # pass until the floor advances).  Deterministic counters, not timing.
    assert affinity["bytes_shipped"] < floor["bytes_shipped"], (
        f"acked deltas shipped {affinity['bytes_shipped']}B, floor path "
        f"{floor['bytes_shipped']}B"
    )
    assert affinity["acked_delta_bytes"] <= affinity["bytes_shipped"]

    # Acceptance bar 2: the affinity path's warm per-step latency beats the
    # PR 4 path on the same workload.
    speedup = floor["total_s"] / max(affinity["total_s"], 1e-9)
    assert speedup > 1.0, f"affinity dispatch should beat the PR 4 path, got {speedup:.2f}x"

    # Acceptance bar 3: the sharded store no longer taxes the thread
    # executor -- non-process sessions evaluate straight off the live store.
    thread_ratio = best["unsharded/thread"]["total_s"] / max(
        best["sharded/thread"]["total_s"], 1e-9
    )
    assert thread_ratio >= 0.95, (
        f"sharded-thread should match unsharded (>=0.95x), got {thread_ratio:.2f}x"
    )

    # Machine-readable trajectory for the CI perf gate.
    merge_bench_provider(
        "dispatch",
        {
            "kind": "provider_warm_path_bench",
            "workload": {
                "users": USERS,
                "steps": STEPS,
                "movers_per_step": MOVERS_PER_STEP,
                "workers": WORKERS,
                "shards": SHARDS,
                "zones": len(ZONE_CELLS),
            },
            "calibration_ms": round(calibration, 3),
            "warm_sharded_process": {
                "per_step_ms": affinity["per_step_ms"],
                "mean_step_ms": round(affinity["total_s"] / STEPS * 1000, 3),
                "bytes_shipped": affinity["bytes_shipped"],
                "resident_hits": affinity["resident_hits"],
                "pool_starts": affinity["pool_starts"],
            },
            "floor_reference": {
                "mean_step_ms": round(floor["total_s"] / STEPS * 1000, 3),
                "bytes_shipped": floor["bytes_shipped"],
            },
        },
    )
