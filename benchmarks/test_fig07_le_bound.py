"""Fig. 7: upper bound of L_E for binary Huffman codes (numerical vs analytical).

The paper plots, for increasing cell counts (sigmoid likelihoods with a=0.95,
b=20), the numerically observed extra code length ``L_E = RL - ceil(log2 n)``
against the analytical golden-ratio bound of Eq. 13.  The reproduced series
must keep the numerical value at or below the analytical bound everywhere.
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import le_bound_sweep

CELL_COUNTS = (16, 32, 64, 128, 256, 512, 1024)


def test_fig07_le_bound(benchmark):
    points = benchmark(le_bound_sweep, cell_counts=CELL_COUNTS, sigmoid_a=0.95, sigmoid_b=20.0, seed=19)

    rows = [
        {
            "n_cells": point.n_cells,
            "numerical_LE": point.numerical,
            "analytical_bound": round(point.analytical_bound, 2),
            "loose_bound_eq11": point.loose_bound,
        }
        for point in points
    ]
    publish_table("fig07_le_bound", "Fig. 7 - encryption overhead L_E (binary Huffman, a=0.95, b=20)", rows)

    # Shape checks: the numerical overhead never exceeds either bound, and the
    # analytical bound is far tighter than the loose Eq. 11 bound for large n.
    for point in points:
        assert point.numerical <= point.analytical_bound + 1e-9
        assert point.numerical <= point.loose_bound
    assert points[-1].analytical_bound < points[-1].loose_bound
