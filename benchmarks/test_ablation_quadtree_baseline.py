"""Ablation: quadtree (Morton) hierarchy baseline vs row-major fixed-length codes.

The original secure alert-zone system [14] derives identifiers from a spatial
hierarchy.  This ablation compares the two fixed-length instantiations --
row-major codes and quadtree/Morton codes -- together with the Huffman scheme,
on both geometric (contiguous) and probability-triggered zones.  Morton codes
aggregate aligned spatial blocks better, which is visible on geometric zones;
neither fixed-length variant helps for the compact triggered zones where the
Huffman scheme shines.
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import radius_sweep_comparison
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.encoding.quadtree import QuadtreeEncodingScheme

RADII = (20.0, 100.0, 300.0)
NUM_ZONES = 10
GRID_SIZE = 32


def test_ablation_quadtree_baseline(benchmark):
    scenario = make_synthetic_scenario(rows=GRID_SIZE, cols=GRID_SIZE, sigmoid_a=0.95, sigmoid_b=100.0, seed=2070)
    schemes = {
        "fixed": FixedLengthEncodingScheme(),
        "quadtree": QuadtreeEncodingScheme(rows=GRID_SIZE, cols=GRID_SIZE),
        "huffman": HuffmanEncodingScheme(),
    }

    def run():
        triggered = radius_sweep_comparison(
            scenario.grid, scenario.probabilities, radii=RADII, num_zones=NUM_ZONES, seed=2071,
            schemes=schemes, triggered=True,
        )
        geometric = radius_sweep_comparison(
            scenario.grid, scenario.probabilities, radii=RADII, num_zones=NUM_ZONES, seed=2071,
            schemes=schemes, triggered=False,
        )
        return triggered, geometric

    triggered, geometric = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, sweep in (("triggered", triggered), ("geometric", geometric)):
        for radius, comparison in zip(sweep.radii, sweep.comparisons):
            rows.append(
                {
                    "workload_model": label,
                    "radius_m": int(radius),
                    "fixed_pairings": comparison.cost_of("fixed").pairings,
                    "quadtree_pairings": comparison.cost_of("quadtree").pairings,
                    "huffman_pairings": comparison.cost_of("huffman").pairings,
                    "quadtree_improvement_pct": round(comparison.improvement_of("quadtree"), 1),
                    "huffman_improvement_pct": round(comparison.improvement_of("huffman"), 1),
                }
            )
    publish_table(
        "ablation_quadtree_baseline",
        "Ablation - quadtree (Morton) hierarchy vs row-major fixed-length vs Huffman",
        rows,
    )

    # On large geometric (contiguous) zones the Morton hierarchy aggregates at
    # least as well as row-major codes; on compact triggered zones the Huffman
    # scheme beats both fixed-length variants.
    last_geometric = geometric.comparisons[-1]
    assert last_geometric.cost_of("quadtree").pairings <= last_geometric.cost_of("fixed").pairings * 1.05
    first_triggered = triggered.comparisons[0]
    assert first_triggered.improvement_of("huffman") > first_triggered.improvement_of("quadtree")
