"""Wire-codec microbench: the encode/decode split per frame body codec.

The service tier's codec pool exists because frame encode/decode is real
work at saturation; this benchmark quantifies it per payload shape --
a small plaintext request (``move``) and a large ciphertext-bearing one
(``ingest_batch``) -- and per body codec (JSON always; msgpack only when
the optional package is importable, mirroring ``wire_format="auto"``).

Decode timings go through :func:`split_frame`, i.e. they include the CRC
check the server pays on every received frame, so the numbers are the ones
the codec-offload threshold (``NetOptions.codec_offload_bytes``) actually
trades against.  Results land in ``results/wire_codec.txt`` and the CI
benchmark job publishes them to its summary.
"""

from __future__ import annotations

import random
import time

from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVE
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.grid.geometry import Point
from repro.net.wire import encode_frame, msgpack_available, split_frame
from repro.protocol.messages import LocationUpdate
from repro.service.requests import IngestBatch, Move, request_to_wire

from benchmarks.conftest import publish_table

PROBABILITIES = [0.2, 0.1, 0.5, 0.4, 0.6, 0.3, 0.25, 0.15]


def _payloads() -> dict[str, dict]:
    """Envelopes shaped like live traffic: one small, one ciphertext-heavy."""
    encoding = HuffmanEncodingScheme().build(PROBABILITIES)
    group = BilinearGroup(prime_bits=32, rng=random.Random(171))
    hve = HVE(width=encoding.reference_length, group=group, rng=random.Random(172))
    keys = hve.setup()
    updates = tuple(
        LocationUpdate(
            user_id=f"user-{i:03d}",
            ciphertext=hve.encrypt(keys.public, encoding.index_of(i % len(PROBABILITIES))),
            sequence_number=i,
        )
        for i in range(8)
    )
    return {
        "move": {
            "id": 1,
            "kind": "request",
            "payload": request_to_wire(Move(user_id="user-001", location=Point(12.5, 48.25))),
        },
        "ingest_batch": {
            "id": 2,
            "kind": "request",
            "payload": request_to_wire(IngestBatch(updates=updates, evaluate=True, at=9.0)),
        },
    }


def _mean_us(fn, repeats: int) -> float:
    fn()  # warm
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) * 1e6 / repeats


def test_wire_codec_encode_decode_split():
    formats = ["json"] + (["msgpack"] if msgpack_available() else [])
    rows = []
    for name, envelope in _payloads().items():
        for fmt in formats:
            frame = encode_frame(envelope, fmt)
            repeats = 2000 if len(frame) < 4096 else 300
            encode_us = _mean_us(lambda: encode_frame(envelope, fmt), repeats)
            decode_us = _mean_us(lambda: split_frame(frame), repeats)
            decoded, rest = split_frame(frame)
            assert decoded == envelope and rest == b""
            rows.append(
                {
                    "payload": name,
                    "codec": fmt,
                    "frame_bytes": len(frame),
                    "encode_us": f"{encode_us:.1f}",
                    "decode_us": f"{decode_us:.1f}",
                }
            )
    if not msgpack_available():
        rows.append(
            {
                "payload": "(msgpack not importable on this image; json only)",
                "codec": "-",
                "frame_bytes": "-",
                "encode_us": "-",
                "decode_us": "-",
            }
        )
    publish_table(
        "wire_codec",
        "wire codec encode/decode split (mean us per frame, CRC included in decode)",
        rows,
    )
    assert any(row["codec"] == "json" for row in rows)
