"""Fig. 12: varying the grid granularity on the synthetic dataset.

With the sigmoid fixed at (a=0.95, b=20) and the physical extent held
constant, the paper varies the grid granularity and reports the pairing cost
and the improvement over the fixed-length baseline.

Expected shapes (paper): higher granularities incur higher absolute pairing
costs (more cells, longer codes), and the Huffman improvement for compact
zones shrinks as the granularity grows (deeper Huffman trees).
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import granularity_sweep

GRID_SIZES = (16, 32, 64)
RADII = (20.0, 100.0, 300.0, 600.0)
NUM_ZONES = 10


def test_fig12_granularity(benchmark):
    results = benchmark(
        granularity_sweep,
        grid_sizes=GRID_SIZES,
        sigmoid_a=0.95,
        sigmoid_b=20.0,
        radii=RADII,
        num_zones=NUM_ZONES,
        seed=2025,
    )

    rows = []
    for result in results:
        for radius, comparison in zip(result.sweep.radii, result.sweep.comparisons):
            rows.append(
                {
                    "grid": f"{result.rows}x{result.cols}",
                    "radius_m": int(radius),
                    "fixed_pairings": comparison.cost_of("fixed").pairings,
                    "huffman_pairings": comparison.cost_of("huffman").pairings,
                    "huffman_improvement_pct": round(comparison.improvement_of("huffman"), 1),
                }
            )
    publish_table("fig12_granularity", "Fig. 12 - varying grid granularity (a=0.95, b=20)", rows)

    # Shape checks.
    # 1. The absolute pairing cost of the baseline grows with granularity
    #    (longer codes, more alerted cells per radius).
    largest_radius_costs = [
        result.sweep.comparisons[-1].cost_of("fixed").pairings for result in results
    ]
    assert largest_radius_costs == sorted(largest_radius_costs)
    # 2. Huffman still helps for the most compact zones at every granularity.
    for result in results:
        assert result.sweep.comparisons[0].improvement_of("huffman") > 0.0
