"""Shard shipping economics: warm delta-passes vs. per-call full reship.

PR 2's process executor re-serialized every fresh ciphertext into each
matching pass; the sharded store ships each shard to workers once and then
sends only ``(shard, version)`` handles plus deltas, with ciphertexts staying
resident (and deserialized) inside the workers.  This benchmark measures that
term directly: the same warm standing-zone workload runs over the unsharded
store and over a grid of shard counts, on both executors, with incremental
matching *off* so every pass re-evaluates the full population -- pairing work
is identical everywhere and the difference is pure shipping.

The acceptance bar asserts the ISSUE's claim: on the process executor, warm
delta-passes beat the full-reship baseline by more than 1x.  A second table
records the zone-targeting receipts (incremental mode): warm ticks skip every
standing zone outright.  Results land in
``benchmarks/results/shard_scaling.txt`` via the CI benchmark job.
"""

import random
import time

from repro.datasets.synthetic import make_synthetic_scenario
from repro.grid.alert_zone import AlertZone
from repro.service import AlertService, Move, PublishZone, ServiceConfig, Subscribe

from .conftest import publish_table

USERS = 120
STEPS = 8
WORKERS = 2
ZONE_CELLS = ((9, 10, 11, 17), (40, 41, 48))


def _run_grid_point(scenario, shards, executor):
    """Warm full-evaluation workload; returns the timing/shipping row."""
    config = ServiceConfig(
        prime_bits=32,
        seed=3,
        workers=WORKERS,
        executor=executor,
        incremental=False,
        shards=shards,
    )
    rng = random.Random(11)
    evaluate_seconds = 0.0
    outcomes = []
    with AlertService(scenario.grid, scenario.probabilities, config=config) as service:
        for i in range(USERS):
            cell = rng.randrange(scenario.grid.n_cells)
            service.subscribe(
                Subscribe(user_id=f"user-{i:04d}", location=scenario.grid.cell_center(cell))
            )
        for index, cells in enumerate(ZONE_CELLS):
            service.publish_zone(
                PublishZone(alert_id=f"zone-{index}", zone=AlertZone(cell_ids=cells), evaluate=False)
            )
        # Warm-up: primes plan, pool and (for sharded stores) the worker-
        # resident shards, so the timed window measures the steady state.
        service.evaluate_standing()
        bytes_shipped = 0
        ciphertexts_shipped = 0
        for step in range(STEPS):
            mover = f"user-{rng.randrange(USERS):04d}"
            cell = rng.randrange(scenario.grid.n_cells)
            service.move(Move(user_id=mover, location=scenario.grid.cell_center(cell)))
            started = time.perf_counter()
            report = service.evaluate_standing()
            evaluate_seconds += time.perf_counter() - started
            outcomes.append((report.notified_users, report.pairings_spent))
            bytes_shipped += report.bytes_shipped
            ciphertexts_shipped += report.shipped_ciphertexts
        stats = service.session_stats()
    return outcomes, {
        "store": f"sharded({shards})" if shards else "unsharded",
        "executor": executor,
        "steps": STEPS,
        "workers": WORKERS,
        "total_s": round(evaluate_seconds, 3),
        "per_step_ms": round(evaluate_seconds / STEPS * 1000, 2),
        # On the process executor the unsharded path re-wires every candidate
        # per call; the sharded rows ship just the warm-up's full payloads
        # plus one delta record per move (the thread rows ship nothing).
        "ciphertexts_shipped": ciphertexts_shipped,
        "bytes_shipped": bytes_shipped,
        "records_serialized": stats.records_serialized,
    }


def test_shard_scaling_grid():
    scenario = make_synthetic_scenario(
        rows=8, cols=8, sigmoid_a=0.9, sigmoid_b=20, seed=61, extent_meters=800.0
    )
    rows = []
    outcomes_by_point = {}
    for executor in ("thread", "process"):
        for shards in (0, WORKERS, 2 * WORKERS):
            outcomes, row = _run_grid_point(scenario, shards, executor)
            outcomes_by_point[(executor, shards)] = outcomes
            rows.append(row)

    # Identical protocol work everywhere: same notifications, bit-exact
    # per-step pairing totals across the whole grid.
    reference = outcomes_by_point[("thread", 0)]
    for outcomes in outcomes_by_point.values():
        assert outcomes == reference

    baseline = {
        executor: next(
            r for r in rows if r["executor"] == executor and r["store"] == "unsharded"
        )
        for executor in ("thread", "process")
    }
    for row in rows:
        base = baseline[row["executor"]]["total_s"]
        row["speedup_vs_unsharded"] = round(base / max(row["total_s"], 1e-9), 2)
    publish_table(
        "shard_scaling",
        f"Sharded store vs per-call reship: {USERS} users, {STEPS} warm full-evaluation "
        f"steps, {len(ZONE_CELLS)} zones, workers={WORKERS} (incremental off; pairing "
        f"work identical, difference is ciphertext shipping)",
        rows,
    )

    # The acceptance bar: warm delta-passes on the process executor must beat
    # shipping every ciphertext every call.  The sharded store ships one
    # moved user per step; the unsharded path re-wires all USERS.
    process_sharded = [
        r for r in rows if r["executor"] == "process" and r["store"] != "unsharded"
    ]
    best = max(r["speedup_vs_unsharded"] for r in process_sharded)
    assert best > 1.0, f"warm delta-passes should beat full reship, got {best:.2f}x"
    # And they genuinely ship less: an order of magnitude fewer serialized
    # records than users x steps.
    for row in process_sharded:
        assert row["records_serialized"] <= USERS + STEPS


def test_zone_targeting_receipts():
    """Incremental + sharded: warm ticks skip every standing zone."""
    scenario = make_synthetic_scenario(
        rows=8, cols=8, sigmoid_a=0.9, sigmoid_b=20, seed=62, extent_meters=800.0
    )
    config = ServiceConfig(prime_bits=32, seed=3, incremental=True, shards=4)
    rng = random.Random(19)
    rows = []
    with AlertService(scenario.grid, scenario.probabilities, config=config) as service:
        for i in range(30):
            cell = rng.randrange(scenario.grid.n_cells)
            service.subscribe(
                Subscribe(user_id=f"user-{i:04d}", location=scenario.grid.cell_center(cell))
            )
        for index, cells in enumerate(ZONE_CELLS):
            service.publish_zone(
                PublishZone(alert_id=f"zone-{index}", zone=AlertZone(cell_ids=cells), evaluate=False)
            )
        service.evaluate_standing()
        for step in range(4):
            started = time.perf_counter()
            report = service.evaluate_standing()
            rows.append(
                {
                    "tick": step,
                    "zones_evaluated": report.zones_evaluated,
                    "zones_skipped": report.zones_skipped,
                    "pairings": report.pairings_spent,
                    "millis": round((time.perf_counter() - started) * 1000, 3),
                }
            )
            assert report.zones_skipped == len(ZONE_CELLS)
            assert report.pairings_spent == 0
    text = publish_table(
        "shard_zone_targeting",
        "Zone targeting on warm ticks (incremental, shards=4): every standing zone "
        "skipped via its shard-version frontier",
        rows,
    )
    assert "zones_skipped" in text
