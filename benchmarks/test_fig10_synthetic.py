"""Fig. 10: performance evaluation on the synthetic dataset (12 panels).

The paper sweeps the sigmoid parameters a in {0.90, 0.99} and b in {10, 100,
200} on a 32x32 grid and reports, per alert-zone radius, the pairing cost and
the improvement over the fixed-length baseline for Huffman, SGO and the
balanced tree.

Expected shapes (paper):
* Huffman achieves large improvements for compact zones (tens of percent, up
  to ~50% for the most skewed settings);
* the improvement grows with the inflection point ``a`` and with the gradient
  ``b`` (more skew -> more benefit);
* the balanced tree yields little to no improvement.
"""

import pytest

from benchmarks.conftest import publish_table
from repro.analysis.experiments import radius_sweep_comparison
from repro.datasets.synthetic import make_synthetic_scenario

RADII = (20.0, 50.0, 100.0, 200.0, 300.0, 450.0, 600.0)
NUM_ZONES = 15
PANELS = [
    (0.90, 10.0),
    (0.90, 100.0),
    (0.90, 200.0),
    (0.99, 10.0),
    (0.99, 100.0),
    (0.99, 200.0),
]


def _run_panel(a: float, b: float):
    scenario = make_synthetic_scenario(rows=32, cols=32, sigmoid_a=a, sigmoid_b=b, seed=2021)
    sweep = radius_sweep_comparison(
        scenario.grid, scenario.probabilities, radii=RADII, num_zones=NUM_ZONES, seed=2022
    )
    return sweep


@pytest.mark.parametrize("a,b", PANELS, ids=[f"a={a:g}-b={b:g}" for a, b in PANELS])
def test_fig10_synthetic_panel(benchmark, a, b):
    sweep = benchmark(_run_panel, a, b)

    rows = []
    for radius, comparison in zip(sweep.radii, sweep.comparisons):
        rows.append(
            {
                "radius_m": int(radius),
                "fixed_pairings": comparison.cost_of("fixed").pairings,
                "huffman_pairings": comparison.cost_of("huffman").pairings,
                "huffman_improvement_pct": round(comparison.improvement_of("huffman"), 1),
                "sgo_improvement_pct": round(comparison.improvement_of("sgo"), 1),
                "balanced_improvement_pct": round(comparison.improvement_of("balanced"), 1),
            }
        )
    publish_table(
        f"fig10_synthetic_a{a:g}_b{b:g}",
        f"Fig. 10 - synthetic dataset, sigmoid(a={a:g}, b={b:g})",
        rows,
    )

    huffman = sweep.improvement_series("huffman")
    balanced = sweep.improvement_series("balanced")
    # Huffman provides positive improvement for compact zones in every panel.
    assert max(huffman[:3]) > 0.0
    # Huffman dominates the balanced-tree baseline on average.
    assert sum(huffman) > sum(balanced)


def test_fig10_improvement_grows_with_skew(benchmark):
    """Cross-panel shape: more skew (higher a) -> larger Huffman improvement."""
    mild = benchmark.pedantic(lambda: _run_panel(0.90, 100.0), rounds=1, iterations=1)
    skewed = _run_panel(0.99, 100.0)
    mild_average = sum(mild.improvement_series("huffman")) / len(RADII)
    skewed_average = sum(skewed.improvement_series("huffman")) / len(RADII)
    publish_table(
        "fig10_skew_effect",
        "Fig. 10 - effect of the inflection point a on the mean Huffman improvement",
        [
            {"sigmoid": "a=0.90, b=100", "mean_huffman_improvement_pct": round(mild_average, 1)},
            {"sigmoid": "a=0.99, b=100", "mean_huffman_improvement_pct": round(skewed_average, 1)},
        ],
    )
    assert skewed_average > mild_average
