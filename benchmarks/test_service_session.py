"""Warm-session economics: the persistent executor pool vs. per-call pools.

The PR 2 process executor made matching scale with cores, but spun up a fresh
``ProcessPoolExecutor`` -- and re-shipped the serialized token plan -- on every
``match`` call, so high-frequency small batches never amortised the start-up
cost (the ROADMAP open item).  The session-oriented ``AlertService`` keeps one
pool for the whole session and re-primes it only when the token plan changes.

This benchmark drives the same 50-step warm workload (one user moves, the
standing zones are re-evaluated) through two sessions that differ only in
``persistent_pool``, asserts the session path wins on the process executor,
and -- through the metrics observer -- that the persistent pool is primed
exactly once across all warm ticks.  Results land in
``benchmarks/results/service_session.txt`` via the CI benchmark job.
"""

import random
import time

from repro.datasets.synthetic import make_synthetic_scenario
from repro.service import AlertService, Move, PublishZone, ServiceConfig, Subscribe

from .conftest import publish_table

STEPS = 50
USERS = 10
ZONES = 2
WORKERS = 2


def _run_session(scenario, zones, persistent: bool):
    """Drive the 50-step warm workload; returns (outcomes, timing/stats row)."""
    config = ServiceConfig(
        prime_bits=32,
        seed=11,
        workers=WORKERS,
        executor="process",
        persistent_pool=persistent,
    )
    rng = random.Random(5)
    metrics = []
    outcomes = []
    evaluate_seconds = 0.0
    with AlertService(scenario.grid, scenario.probabilities, config=config) as service:
        service.add_observer(metrics.append)
        for i in range(USERS):
            cell = rng.randrange(scenario.grid.n_cells)
            service.subscribe(Subscribe(user_id=f"user-{i:03d}", location=scenario.grid.cell_center(cell)))
        for index, zone in enumerate(zones):
            service.publish_zone(PublishZone(alert_id=f"zone-{index}", zone=zone, evaluate=False))
        # Warm-up tick: builds the plan and (for the persistent session)
        # primes the pool; excluded from the timed window so both modes are
        # measured on their steady state.
        service.evaluate_standing()

        for step in range(STEPS):
            mover = f"user-{rng.randrange(USERS):03d}"
            cell = rng.randrange(scenario.grid.n_cells)
            service.move(Move(user_id=mover, location=scenario.grid.cell_center(cell)))
            started = time.perf_counter()
            report = service.evaluate_standing()
            evaluate_seconds += time.perf_counter() - started
            outcomes.append((report.notified_users, report.pairings_spent))
        stats = service.session_stats()

    ticks = [m for m in metrics if m.request == "evaluate_standing"]
    row = {
        "mode": "persistent-pool" if persistent else "pool-per-call",
        "steps": STEPS,
        "workers": WORKERS,
        "total_s": round(evaluate_seconds, 3),
        "per_step_ms": round(evaluate_seconds / STEPS * 1000, 2),
        "pool_starts": stats.process_pool_starts,
        "re_primes": stats.pool_reprimes,
        "plan_builds": stats.plan_builds,
        "plan_reuses": stats.plan_reuses,
    }
    return outcomes, ticks, row


def test_warm_session_beats_per_call_pools():
    scenario = make_synthetic_scenario(rows=6, cols=6, sigmoid_a=0.9, sigmoid_b=20, seed=29, extent_meters=600.0)
    # Draw the standing zones once: the generator's RNG advances per call, and
    # both sessions must evaluate the same workload.
    zones = scenario.workloads.triggered_radius_workload(120.0, ZONES).zones

    persistent_outcomes, persistent_ticks, persistent_row = _run_session(scenario, zones, persistent=True)
    baseline_outcomes, _, baseline_row = _run_session(scenario, zones, persistent=False)

    # Same protocol work either way: identical notifications, bit-exact
    # per-step pairing totals.
    assert persistent_outcomes == baseline_outcomes

    # The metrics observer proves the ROADMAP item: across the warm-up and all
    # 50 warm ticks the persistent pool is primed exactly once (the plan never
    # changes), and every warm tick reuses the cached plan.
    assert persistent_row["pool_starts"] == 1
    assert persistent_row["re_primes"] == 0
    assert persistent_row["plan_builds"] == 1
    assert all(m.plan_reused for m in persistent_ticks[1:])
    assert all(not m.pool_reprimed for m in persistent_ticks[1:])

    speedup = baseline_row["total_s"] / max(persistent_row["total_s"], 1e-9)
    rows = [persistent_row, baseline_row]
    for row in rows:
        row["speedup_vs_baseline"] = round(baseline_row["total_s"] / max(row["total_s"], 1e-9), 2)
    publish_table(
        "service_session",
        f"Warm AlertService session, {STEPS} steps, executor=process, workers={WORKERS} "
        f"(amortised per-batch latency; persistent pool is re-primed only on plan change)",
        rows,
    )

    # The acceptance bar: the long-lived session must beat starting (and
    # re-priming) a process pool on every call.  The gap is dominated by 50
    # saved pool start-ups, so it is wide even on a single-core runner.
    assert speedup > 1.0, f"persistent pool should win, got {speedup:.2f}x"
