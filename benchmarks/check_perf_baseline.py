#!/usr/bin/env python3
"""CI perf gate: fail when a tracked provider-side latency regresses >25%.

Compares the freshly generated ``benchmarks/results/BENCH_provider.json``
against the committed baseline ``benchmarks/BENCH_provider_baseline.json``.
The file carries one section per feeding benchmark:

``dispatch``
    Warm sharded-process per-step latency, written by
    ``benchmarks/test_dispatch_affinity.py``.
``crypto_core``
    Fused packed-worklist matching latency at the 1k-user tier, written by
    ``benchmarks/test_matching_engine.py::test_crypto_core_fused_tier``.
``net_tier``
    Open-loop p99 latency pooled over the sweep's clean uncongested points
    (lower half of the offered rates, zero drops/BUSY -- several hundred
    samples instead of one ~60-sample point) *and* the sweep's saturation
    throughput, both against a live ``repro serve`` process, written by
    ``benchmarks/test_net_tier.py``.

Raw wall-clock is meaningless across machines, so every section carries a
``calibration_ms`` constant -- the time of a fixed pure-Python workload on the
same host, in the same run.  What is compared is the *calibrated* metric:
latencies divide by the calibration (work per unit of host speed), while
throughputs multiply by it (a slower host completes proportionally fewer
requests per second, so rps x calibration is the host-independent quantity).
Each tracked metric declares its direction: a ``lower``-is-better metric
fails when it rises more than ``THRESHOLD`` above the baseline, a
``higher``-is-better one fails when it *drops* more than ``THRESHOLD``
below it.  An improvement beyond the threshold prints a hint to refresh the
baseline but passes.  Sections in the baseline must exist in the current
results with an identical workload definition; a new section or metric only
in the current results is reported but not gated (its first baseline lands
with the refresh).

Usage::

    python benchmarks/check_perf_baseline.py [current.json] [baseline.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

THRESHOLD = 0.25

HERE = pathlib.Path(__file__).parent
DEFAULT_CURRENT = HERE / "results" / "BENCH_provider.json"
DEFAULT_BASELINE = HERE / "BENCH_provider_baseline.json"

#: section name -> list of (label, metric extractor, direction).  ``lower``
#: metrics are latencies (calibrated by division), ``higher`` metrics are
#: throughputs (calibrated by multiplication).
SECTION_METRICS = {
    "dispatch": [
        (
            "warm per-step latency",
            lambda section: float(section["warm_sharded_process"]["mean_step_ms"]),
            "lower",
        ),
    ],
    "crypto_core": [
        (
            "fused 1k-tier matching latency",
            lambda section: float(section["fused_tier"]["fused_ms"]),
            "lower",
        ),
    ],
    "net_tier": [
        (
            "open-loop p99 latency",
            lambda section: float(section["gate"]["p99_ms"]),
            "lower",
        ),
        (
            "saturation throughput",
            lambda section: float(section["saturation_rps"]),
            "higher",
        ),
    ],
}


def calibrated(section: dict, metric, direction: str) -> float:
    """A section's metric in units of its host calibration workload."""
    calibration = float(section["calibration_ms"])
    if calibration <= 0:
        raise ValueError("calibration_ms must be positive")
    if direction == "higher":
        return metric(section) * calibration
    return metric(section) / calibration


def main(argv: list[str]) -> int:
    current_path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_CURRENT
    baseline_path = pathlib.Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    if not current_path.exists():
        print(f"perf gate: no current results at {current_path}; run the benchmarks first")
        return 1
    if not baseline_path.exists():
        print(f"perf gate: no committed baseline at {baseline_path}; nothing to compare")
        return 1
    current = json.loads(current_path.read_text(encoding="utf-8")).get("sections", {})
    baseline = json.loads(baseline_path.read_text(encoding="utf-8")).get("sections", {})
    if not baseline:
        print(f"perf gate: baseline {baseline_path} has no sections; refresh it")
        return 1

    failed = False
    improved = False
    for name, metrics in SECTION_METRICS.items():
        if name not in baseline:
            if name in current:
                print(f"perf gate: [{name}] new section (no baseline yet); not gated")
            continue
        if name not in current:
            print(f"perf gate: [{name}] missing from current results; run its benchmark")
            failed = True
            continue
        if current[name].get("workload") != baseline[name].get("workload"):
            print(
                f"perf gate: [{name}] workload definition changed; refresh the baseline "
                f"(cp {current_path} {baseline_path})"
            )
            failed = True
            continue
        for label, metric, direction in metrics:
            try:
                then = calibrated(baseline[name], metric, direction)
            except (KeyError, TypeError):
                print(f"perf gate: [{name}] {label}: not in the baseline yet; not gated")
                continue
            now = calibrated(current[name], metric, direction)
            change = now / then - 1.0
            unit = "rps" if direction == "higher" else "ms"
            print(
                f"perf gate: [{name}] calibrated {label} {now:.3f} vs baseline {then:.3f} "
                f"({change:+.1%}; raw {metric(current[name]):.2f}{unit} on a "
                f"{float(current[name]['calibration_ms']):.1f}ms-calibration host)"
            )
            regressed = change > THRESHOLD if direction == "lower" else change < -THRESHOLD
            if regressed:
                verb = "regressed" if direction == "lower" else "dropped"
                print(f"perf gate: [{name}] FAIL -- {label} {verb} more than {THRESHOLD:.0%}")
                failed = True
            elif (change < -THRESHOLD) if direction == "lower" else (change > THRESHOLD):
                improved = True

    if failed:
        return 1
    if improved:
        print(
            "perf gate: improvement beyond the threshold; consider refreshing the baseline "
            f"(cp {current_path} {baseline_path})"
        )
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
