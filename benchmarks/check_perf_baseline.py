#!/usr/bin/env python3
"""CI perf gate: fail when the warm-path per-step latency regresses >25%.

Compares the freshly generated ``benchmarks/results/BENCH_provider.json``
(written by ``benchmarks/test_dispatch_affinity.py``) against the committed
baseline ``benchmarks/BENCH_provider_baseline.json``.

Raw wall-clock is meaningless across machines, so both files carry a
``calibration_ms`` constant -- the time of a fixed pure-Python workload on the
same host, in the same run.  What is compared is the *calibrated* per-step
latency (``mean_step_ms / calibration_ms``): work per unit of host speed.  A
current value more than ``THRESHOLD`` above the baseline fails the build; an
*improvement* beyond the threshold prints a hint to refresh the baseline but
passes.

Usage::

    python benchmarks/check_perf_baseline.py [current.json] [baseline.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

THRESHOLD = 0.25

HERE = pathlib.Path(__file__).parent
DEFAULT_CURRENT = HERE / "results" / "BENCH_provider.json"
DEFAULT_BASELINE = HERE / "BENCH_provider_baseline.json"


def calibrated_step(payload: dict) -> float:
    """Per-step latency in units of the host calibration workload."""
    calibration = float(payload["calibration_ms"])
    if calibration <= 0:
        raise ValueError("calibration_ms must be positive")
    return float(payload["warm_sharded_process"]["mean_step_ms"]) / calibration


def main(argv: list[str]) -> int:
    current_path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_CURRENT
    baseline_path = pathlib.Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    if not current_path.exists():
        print(f"perf gate: no current results at {current_path}; run the benchmark first")
        return 1
    if not baseline_path.exists():
        print(f"perf gate: no committed baseline at {baseline_path}; nothing to compare")
        return 1
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if current.get("workload") != baseline.get("workload"):
        print(
            "perf gate: workload definition changed; refresh the baseline "
            f"(cp {current_path} {baseline_path})"
        )
        return 1
    now = calibrated_step(current)
    then = calibrated_step(baseline)
    change = now / then - 1.0
    print(
        f"perf gate: calibrated per-step latency {now:.3f} vs baseline {then:.3f} "
        f"({change:+.1%}; raw {current['warm_sharded_process']['mean_step_ms']:.2f}ms on a "
        f"{current['calibration_ms']:.1f}ms-calibration host)"
    )
    if change > THRESHOLD:
        print(f"perf gate: FAIL -- warm-path latency regressed more than {THRESHOLD:.0%}")
        return 1
    if change < -THRESHOLD:
        print(
            "perf gate: improvement beyond the threshold; consider refreshing the baseline "
            f"(cp {current_path} {baseline_path})"
        )
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
