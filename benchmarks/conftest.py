"""Shared fixtures and report helpers for the benchmark harness."""

from __future__ import annotations

import pathlib
from typing import Iterable, Mapping, Sequence

import pytest

from repro.datasets.chicago import CHICAGO_BOUNDING_BOX, generate_chicago_crime_dataset
from repro.grid.geometry import haversine_distance
from repro.grid.grid import Grid
from repro.probability.crime_model import CellLikelihoodModel

#: Where rendered result tables are written (one text file per figure).
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def render_table(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r[c])) for r in rows)) for c in columns}
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def publish_table(name: str, title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Print a result table and persist it under ``benchmarks/results/``."""
    text = render_table(title, rows)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    print("\n" + text)
    return text


@pytest.fixture(scope="session")
def chicago_grid() -> Grid:
    """The 32x32 grid overlaid on the Chicago bounding box (Section 7.1)."""
    return Grid(rows=32, cols=32, bounding_box=CHICAGO_BOUNDING_BOX, distance=haversine_distance)


@pytest.fixture(scope="session")
def chicago_likelihoods(chicago_grid) -> tuple[list[float], float]:
    """Per-cell alert likelihoods from the crime model, plus the model accuracy."""
    dataset = generate_chicago_crime_dataset(seed=2015)
    model = CellLikelihoodModel(rows=chicago_grid.rows, cols=chicago_grid.cols).fit(
        dataset.cell_month_matrix(chicago_grid)
    )
    return model.cell_probabilities(), float(model.accuracy_ or 0.0)


@pytest.fixture(scope="session")
def chicago_dataset():
    """The canonical synthetic Chicago crime dataset used across benchmarks."""
    return generate_chicago_crime_dataset(seed=2015)
