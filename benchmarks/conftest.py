"""Shared fixtures and report helpers for the benchmark harness."""

from __future__ import annotations

import gc
import json
import pathlib
import time
from typing import Iterable, Mapping, Sequence

import pytest

from repro.datasets.chicago import CHICAGO_BOUNDING_BOX, generate_chicago_crime_dataset
from repro.grid.geometry import haversine_distance
from repro.grid.grid import Grid
from repro.probability.crime_model import CellLikelihoodModel

#: Where rendered result tables are written (one text file per figure).
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def render_table(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r[c])) for r in rows)) for c in columns}
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def publish_table(name: str, title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Print a result table and persist it under ``benchmarks/results/``."""
    text = render_table(title, rows)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    print("\n" + text)
    return text


def calibration_ms() -> float:
    """A fixed pure-Python workload, timing the host rather than the code.

    The perf gate divides benchmark latencies by this constant (and multiplies
    throughputs by it), so a committed baseline from one machine remains
    meaningful on another (CI runners, dev laptops): what is compared is work
    per unit of host speed, not wall-clock.

    The constant is the **minimum of five repetitions**, each preceded by a
    ``gc.collect()``: contention, GC and scheduler preemption only ever *add*
    time, so the minimum is the host's actual speed, and collecting first
    keeps a caller's allocation-heavy history (e.g. the fused-pack build)
    from taxing every repetition alike.  A single-shot reading once landed a
    ~1.4x outlier in a committed baseline and manufactured a phantom 50%
    regression on every later run -- the gate is only as stable as this
    constant.
    """
    best = float("inf")
    for _ in range(5):
        gc.collect()
        started = time.perf_counter()
        acc = 3
        for _ in range(5000):
            acc = pow(acc, 65537, (1 << 127) - 1)
        assert acc != 0
        best = min(best, (time.perf_counter() - started) * 1000)
    return best


def merge_bench_provider(section: str, payload: Mapping[str, object]) -> pathlib.Path:
    """Merge one benchmark's machine-readable payload into BENCH_provider.json.

    Several benchmark modules feed the provider-side perf gate
    (``benchmarks/check_perf_baseline.py``); each owns one key under
    ``sections`` and must not clobber the others, so writes go through this
    read-modify-write.  A corrupt or legacy (pre-``sections``) file is
    replaced rather than merged.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_provider.json"
    data: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            existing = None
        if isinstance(existing, dict) and isinstance(existing.get("sections"), dict):
            data = existing
    data["kind"] = "bench_provider_v2"
    data.setdefault("sections", {})[section] = dict(payload)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def chicago_grid() -> Grid:
    """The 32x32 grid overlaid on the Chicago bounding box (Section 7.1)."""
    return Grid(rows=32, cols=32, bounding_box=CHICAGO_BOUNDING_BOX, distance=haversine_distance)


@pytest.fixture(scope="session")
def chicago_likelihoods(chicago_grid) -> tuple[list[float], float]:
    """Per-cell alert likelihoods from the crime model, plus the model accuracy."""
    dataset = generate_chicago_crime_dataset(seed=2015)
    model = CellLikelihoodModel(rows=chicago_grid.rows, cols=chicago_grid.cols).fit(
        dataset.cell_month_matrix(chicago_grid)
    )
    return model.cell_probabilities(), float(model.accuracy_ or 0.0)


@pytest.fixture(scope="session")
def chicago_dataset():
    """The canonical synthetic Chicago crime dataset used across benchmarks."""
    return generate_chicago_crime_dataset(seed=2015)
