"""Fig. 13: average-to-maximum Huffman code length ratio vs grid size.

The paper reports, for increasing grid sizes under the (a=0.95, b=20) sigmoid
model, the ratio between the average and the maximum Huffman code length.  As
the grid grows there are more near-zero-likelihood cells, the tree gets deeper
relative to its typical leaf, and the ratio drops -- which is the paper's
explanation for the shrinking improvement at high granularities (Fig. 12).
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import code_length_ratio_sweep

GRID_SIZES = (8, 16, 32, 64)


def test_fig13_code_length_ratio(benchmark):
    points = benchmark(code_length_ratio_sweep, grid_sizes=GRID_SIZES, sigmoid_a=0.95, sigmoid_b=20.0, seed=2026)

    rows = [
        {
            "grid": f"{size}x{size}",
            "n_cells": point.n_cells,
            "average_code_length": round(point.average_length, 2),
            "max_code_length": point.max_length,
            "avg_to_max_ratio": round(point.ratio, 3),
        }
        for size, point in zip(GRID_SIZES, points)
    ]
    publish_table("fig13_code_length_ratio", "Fig. 13 - average-to-maximum Huffman code length ratio", rows)

    # Shape checks: the ratio is a proper fraction everywhere, and both the
    # average and the maximum code length grow with the cell count (deeper
    # trees at higher granularity, the effect the paper links to Fig. 12).
    # Note (documented in EXPERIMENTS.md): in this reproduction the maximum
    # length is driven by the sigmoid's minimum likelihood, which does not
    # change with n, so the avg/max *ratio* trends upward rather than
    # downward; the underlying "deeper trees at higher granularity" effect is
    # still visible in the absolute lengths below and in Fig. 12's shrinking
    # improvement.
    ratios = [point.ratio for point in points]
    assert all(0.0 < ratio <= 1.0 for ratio in ratios)
    averages = [point.average_length for point in points]
    maxima = [point.max_length for point in points]
    assert averages == sorted(averages)
    assert maxima == sorted(maxima)
