"""Ablation: evolving (spread-model) alert zones and delta-token issuance.

The paper's future-work section argues that when the alert zone evolves
according to a spread model (e.g. a chemical gas leak), significant gains are
possible.  This benchmark quantifies one such gain that the reproduction
implements: when the zone at time ``t+1`` contains the zone at time ``t``, the
trusted authority only needs to issue tokens for the *newly added* cells
(users already notified stay notified), instead of re-issuing tokens for the
whole zone at every step.
"""

import random

from benchmarks.conftest import publish_table
from repro.crypto.counting import pairing_cost_of_tokens
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.grid.spread import SpreadEvent, delta_cells, spread_zone_sequence

STEPS = 6
NUM_EVENTS = 10


def _cost_per_step(encoding, zones, deltas):
    full = [pairing_cost_of_tokens(encoding.token_patterns(list(zone.cell_ids))) for zone in zones]
    delta = [
        pairing_cost_of_tokens(encoding.token_patterns(list(cells))) if cells else 0
        for cells in deltas
    ]
    return full, delta


def test_ablation_spread_model(benchmark):
    scenario = make_synthetic_scenario(rows=24, cols=24, sigmoid_a=0.9, sigmoid_b=50.0, seed=2040, extent_meters=2400.0)
    huffman = HuffmanEncodingScheme().build(scenario.probabilities)
    fixed = FixedLengthEncodingScheme().build(scenario.probabilities)
    rng = random.Random(2041)

    def run():
        totals = {"huffman_full": 0, "huffman_delta": 0, "fixed_full": 0, "fixed_delta": 0}
        for _ in range(NUM_EVENTS):
            seed_cell = rng.randrange(scenario.grid.n_cells)
            event = SpreadEvent(
                scenario.grid,
                seed_cell=seed_cell,
                spread_probability=0.7,
                decay=0.8,
                wind="east",
                rng=random.Random(rng.randrange(1 << 30)),
            )
            zones = spread_zone_sequence(event, STEPS)
            deltas = delta_cells(zones)
            for name, encoding in (("huffman", huffman), ("fixed", fixed)):
                full, delta = _cost_per_step(encoding, zones, deltas)
                totals[f"{name}_full"] += sum(full)
                totals[f"{name}_delta"] += sum(delta)
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "scheme": name,
            "reissue_full_zone_pairings": totals[f"{name}_full"],
            "delta_tokens_pairings": totals[f"{name}_delta"],
            "saving_pct": round(
                100.0 * (totals[f"{name}_full"] - totals[f"{name}_delta"]) / max(1, totals[f"{name}_full"]), 1
            ),
        }
        for name in ("huffman", "fixed")
    ]
    publish_table(
        "ablation_spread_model",
        f"Ablation - evolving spread zones over {STEPS} steps: full re-issue vs delta tokens",
        rows,
    )

    # Delta issuance never costs more than re-issuing the full zone, and the
    # saving is substantial for multi-step events.
    for row in rows:
        assert row["delta_tokens_pairings"] <= row["reissue_full_zone_pairings"]
    assert rows[0]["saving_pct"] > 20.0
