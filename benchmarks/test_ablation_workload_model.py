"""Ablation: probability-triggered zones vs purely geometric circular zones.

DESIGN.md and EXPERIMENTS.md document one workload-model interpretation made
by this reproduction: per the paper's definition of ``p(v_i)`` as "the
likelihood of cell v_i becoming alerted", the evaluation workload alerts the
cells inside an event's radius *according to their own likelihood*
(``triggered_radius_workload``).  The alternative reading -- every cell inside
the circle is alerted regardless of likelihood -- is kept as an ablation.
This benchmark quantifies how the choice affects each scheme, making the
interpretation's impact visible rather than hidden.
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import radius_sweep_comparison
from repro.datasets.synthetic import make_synthetic_scenario

RADII = (20.0, 100.0, 300.0)
NUM_ZONES = 10


def test_ablation_triggered_vs_geometric(benchmark):
    scenario = make_synthetic_scenario(rows=32, cols=32, sigmoid_a=0.95, sigmoid_b=100.0, seed=2031)

    def run():
        triggered = radius_sweep_comparison(
            scenario.grid, scenario.probabilities, radii=RADII, num_zones=NUM_ZONES, seed=2032, triggered=True
        )
        geometric = radius_sweep_comparison(
            scenario.grid, scenario.probabilities, radii=RADII, num_zones=NUM_ZONES, seed=2032, triggered=False
        )
        return triggered, geometric

    triggered, geometric = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, sweep in (("triggered", triggered), ("geometric", geometric)):
        for radius, comparison in zip(sweep.radii, sweep.comparisons):
            rows.append(
                {
                    "workload_model": label,
                    "radius_m": int(radius),
                    "fixed_pairings": comparison.cost_of("fixed").pairings,
                    "huffman_improvement_pct": round(comparison.improvement_of("huffman"), 1),
                    "sgo_improvement_pct": round(comparison.improvement_of("sgo"), 1),
                }
            )
    publish_table(
        "ablation_workload_model",
        "Ablation - probability-triggered vs geometric alert zones",
        rows,
    )

    # Under the triggered model the compact-zone improvement of Huffman is
    # positive for every radius; under the geometric model, large zones are
    # dominated by unlikely cells with long codes, so the variable-length
    # advantage shrinks or reverses -- which is exactly why the interpretation
    # matters and is documented.
    assert all(value > 0.0 for value in triggered.improvement_series("huffman"))
    assert geometric.improvement_series("huffman")[-1] < triggered.improvement_series("huffman")[-1]
