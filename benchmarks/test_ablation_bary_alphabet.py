"""Ablation: effect of the alphabet size B (Section 4 extension).

The B-ary extension trades tree depth for wider one-hot groups: larger
alphabets give shallower symbol trees and tokens whose expansion carries a
single non-star bit per real symbol.  This ablation compares the binary scheme
against 3-ary and 4-ary variants on the standard compact-zone workload and on
single-cell alerts, and reports the resulting HVE widths (the ciphertext size
driver analysed in Section 5).
"""

from benchmarks.conftest import publish_table
from repro.analysis.experiments import radius_sweep_comparison
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.bary import BaryHuffmanEncodingScheme
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme

RADII = (20.0, 100.0, 300.0)
NUM_ZONES = 15


def _schemes():
    return {
        "fixed": FixedLengthEncodingScheme(),
        "huffman": HuffmanEncodingScheme(),
        "huffman-3ary": BaryHuffmanEncodingScheme(3),
        "huffman-4ary": BaryHuffmanEncodingScheme(4),
    }


def test_ablation_alphabet_size(benchmark):
    scenario = make_synthetic_scenario(rows=24, cols=24, sigmoid_a=0.95, sigmoid_b=100.0, seed=2028, extent_meters=2400.0)

    def run():
        return radius_sweep_comparison(
            scenario.grid,
            scenario.probabilities,
            radii=RADII,
            num_zones=NUM_ZONES,
            seed=2029,
            schemes=_schemes(),
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    encodings = {name: scheme.build(scenario.probabilities) for name, scheme in _schemes().items()}
    rows = []
    for radius, comparison in zip(sweep.radii, sweep.comparisons):
        for name in encodings:
            rows.append(
                {
                    "radius_m": int(radius),
                    "scheme": name,
                    "pairings": comparison.cost_of(name).pairings,
                    "improvement_pct": round(comparison.improvement_of(name), 1),
                    "hve_width_bits": encodings[name].reference_length,
                }
            )
    publish_table("ablation_bary_alphabet", "Ablation - alphabet size B (binary vs 3-ary vs 4-ary Huffman)", rows)

    # All Huffman variants beat the fixed baseline for the most compact zones.
    first = sweep.comparisons[0]
    for name in ("huffman", "huffman-3ary", "huffman-4ary"):
        assert first.improvement_of(name) > 0.0
    # Larger alphabets produce shallower symbol trees: the symbol-level RL
    # decreases, even though the expanded bit width may grow.
    symbol_rl = {
        name: encodings[name].artifacts.reference_length
        for name in ("huffman", "huffman-3ary", "huffman-4ary")
    }
    assert symbol_rl["huffman-4ary"] <= symbol_rl["huffman-3ary"] <= symbol_rl["huffman"]
