"""Fig. 8: Chicago crime dataset statistics.

The paper reports the composition of the 2015 Chicago crime extract used for
the real-data evaluation: four categories (homicide, criminal sexual assault,
sex offense, kidnapping) and their volumes, plus the accuracy of the logistic
regression model trained on January-November and tested on December (92.9% in
the paper).  We regenerate the same statistics from the synthetic stand-in
dataset (DESIGN.md, substitution 2).
"""

from benchmarks.conftest import publish_table
from repro.datasets.chicago import CRIME_CATEGORIES, generate_chicago_crime_dataset


def test_fig08_dataset_statistics(benchmark, chicago_grid, chicago_likelihoods, chicago_dataset):
    dataset = benchmark(generate_chicago_crime_dataset, seed=2015)
    _, accuracy = chicago_likelihoods

    category_counts = dataset.category_counts()
    monthly = dataset.monthly_totals()

    rows = [
        {"category": category, "incidents_2015": category_counts[category]}
        for category in CRIME_CATEGORIES
    ]
    rows.append({"category": "TOTAL", "incidents_2015": len(dataset)})
    publish_table("fig08_category_counts", "Fig. 8 - incident counts per crime category", rows)

    month_rows = [
        {"month": month_index + 1, "incidents": count} for month_index, count in enumerate(monthly)
    ]
    month_rows.append({"month": "model accuracy", "incidents": f"{accuracy:.3f} (paper: 0.929)"})
    publish_table("fig08_monthly_totals", "Fig. 8 - monthly incident totals and model accuracy", month_rows)

    # Shape checks: category ordering by volume matches the real dataset's
    # ordering, every month has incidents, and the model is usefully accurate.
    assert category_counts["CRIMINAL SEXUAL ASSAULT"] > category_counts["SEX OFFENSE"]
    assert category_counts["SEX OFFENSE"] > category_counts["HOMICIDE"]
    assert category_counts["HOMICIDE"] > category_counts["KIDNAPPING"]
    assert all(count > 0 for count in monthly)
    assert accuracy > 0.8
