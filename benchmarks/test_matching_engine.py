"""Provider-side throughput benchmark: naive vs planned matching engine.

The figure-level benchmarks count pairings (the paper's metric); this module
records the *wall-clock* trajectory of the provider's matching hot path.  A
users x workload grid is matched under both engine strategies with pairing
work factor 0, so the numbers isolate the engine's own overheads -- token
planning, cached positions and the fused exponent-arithmetic path -- from
simulated pairing cost.  The acceptance floor: the planned strategy must be
at least 2x faster than the naive element-wise path on the 40-user compact
zone workload.
"""

import random
import time

from benchmarks.conftest import publish_table
from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVE
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.protocol.matching import MatchCandidate, MatchingEngine, MatchingOptions
from repro.protocol.messages import TokenBatch

MAX_USERS = 40
USER_GRID = (10, 40)
TIMING_ROUNDS = 5


def _build_world(seed=4021):
    scenario = make_synthetic_scenario(
        rows=16, cols=16, sigmoid_a=0.95, sigmoid_b=100.0, seed=seed, extent_meters=1600.0
    )
    encoding = HuffmanEncodingScheme().build(scenario.probabilities)
    group = BilinearGroup(prime_bits=64, rng=random.Random(seed + 1), pairing_work_factor=0)
    hve = HVE(width=encoding.reference_length, group=group, rng=random.Random(seed + 2))
    keys = hve.setup()
    rng = random.Random(seed + 3)
    candidates = [
        MatchCandidate(
            user_id=f"user-{i:03d}",
            ciphertext=hve.encrypt(keys.public, encoding.index_of(rng.randrange(scenario.grid.n_cells))),
        )
        for i in range(MAX_USERS)
    ]
    return scenario, encoding, hve, keys, candidates


def _workloads(scenario, encoding, hve, keys):
    """Alert workloads spanning the token-count axis of the grid."""
    compact_zone = scenario.workloads.triggered_radius_workload(50.0, 1).zones[0]
    wide_zones = scenario.workloads.triggered_radius_workload(220.0, 2).zones
    workloads = {}
    compact_tokens = hve.generate_tokens(keys.secret, encoding.token_patterns(list(compact_zone.cell_ids)))
    workloads["compact-zone"] = [TokenBatch(alert_id="compact", tokens=tuple(compact_tokens))]
    wide_batches = []
    for i, zone in enumerate(wide_zones):
        tokens = hve.generate_tokens(keys.secret, encoding.token_patterns(list(zone.cell_ids)))
        wide_batches.append(TokenBatch(alert_id=f"wide-{i}", tokens=tuple(tokens)))
    workloads["wide-batch"] = wide_batches
    return workloads


def _time_strategy(hve, options, batches, candidates):
    """Best-of-N wall clock for one matching round, plus its pairing count."""
    engine = MatchingEngine(hve, options)
    counter = hve.group.counter
    before = counter.total
    notifications = engine.match(batches, candidates)
    pairings = counter.total - before
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        engine.match(batches, candidates)
        best = min(best, time.perf_counter() - start)
    return notifications, pairings, best


def test_matching_engine_throughput_grid():
    scenario, encoding, hve, keys, all_candidates = _build_world()
    workloads = _workloads(scenario, encoding, hve, keys)

    rows = []
    speedups = {}
    for workload_name, batches in workloads.items():
        n_tokens = sum(len(b.tokens) for b in batches)
        for n_users in USER_GRID:
            candidates = all_candidates[:n_users]
            naive_notes, naive_pairings, naive_secs = _time_strategy(
                hve, MatchingOptions(strategy="naive"), batches, candidates
            )
            planned_notes, planned_pairings, planned_secs = _time_strategy(
                hve, MatchingOptions(strategy="planned"), batches, candidates
            )
            assert planned_notes == naive_notes  # outcome parity before we trust the timing
            speedup = naive_secs / planned_secs if planned_secs > 0 else float("inf")
            speedups[(workload_name, n_users)] = speedup
            rows.append(
                {
                    "workload": workload_name,
                    "users": n_users,
                    "tokens": n_tokens,
                    "naive_ms": round(naive_secs * 1e3, 3),
                    "planned_ms": round(planned_secs * 1e3, 3),
                    "speedup": round(speedup, 2),
                    "naive_pairings": naive_pairings,
                    "planned_pairings": planned_pairings,
                    "notified": len(planned_notes),
                }
            )

    publish_table(
        "matching_engine_throughput",
        f"Matching engine throughput: naive vs planned (work factor 0, best of {TIMING_ROUNDS})",
        rows,
    )

    # Pairing counts can only shrink under the planned strategy's dedupe.
    for row in rows:
        assert row["planned_pairings"] <= row["naive_pairings"]
    # Acceptance floor: >= 2x on the 40-user compact-zone workload.  The
    # observed ratio is typically 3-5x; re-measure a couple of times before
    # failing so a CPU-steal spike on a shared runner cannot flake the build.
    floor = 2.0
    speedup = speedups[("compact-zone", MAX_USERS)]
    compact_batches = workloads["compact-zone"]
    for _ in range(2):
        if speedup >= floor:
            break
        _, _, naive_secs = _time_strategy(hve, MatchingOptions(strategy="naive"), compact_batches, all_candidates)
        _, _, planned_secs = _time_strategy(hve, MatchingOptions(strategy="planned"), compact_batches, all_candidates)
        speedup = max(speedup, naive_secs / planned_secs)
    assert speedup >= floor


def test_worker_scaling_smoke():
    """Multi-worker matching produces identical output; timings go on record."""
    scenario, encoding, hve, keys, candidates = _build_world(seed=4077)
    batches = _workloads(scenario, encoding, hve, keys)["compact-zone"]
    serial = MatchingEngine(hve, MatchingOptions(strategy="planned")).match(batches, candidates)
    rows = []
    for workers in (1, 2, 4):
        options = MatchingOptions(strategy="planned", workers=workers, chunk_size=8)
        notifications, pairings, secs = _time_strategy(hve, options, batches, candidates)
        assert notifications == serial
        rows.append({"workers": workers, "wall_ms": round(secs * 1e3, 3), "pairings": pairings})
    publish_table(
        "matching_engine_workers",
        "Planned matching with worker threads (GIL-bound backend: parity check + overhead record)",
        rows,
    )
