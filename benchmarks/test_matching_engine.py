"""Provider-side throughput benchmark: naive vs planned matching engine.

The figure-level benchmarks count pairings (the paper's metric); this module
records the *wall-clock* trajectory of the provider's matching hot path.  A
users x workload grid is matched under both engine strategies with pairing
work factor 0, so the numbers isolate the engine's own overheads -- token
planning, cached positions and the fused exponent-arithmetic path -- from
simulated pairing cost.  The acceptance floor: the planned strategy must be
at least 2x faster than the naive element-wise path on the 40-user compact
zone workload.
"""

import os
import random
import time

from benchmarks.conftest import calibration_ms, merge_bench_provider, publish_table
from repro.crypto.backends import available_backends
from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVE
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.huffman import HuffmanEncodingScheme
from repro.protocol.matching import MatchCandidate, MatchingEngine, MatchingOptions
from repro.protocol.messages import TokenBatch

MAX_USERS = 40
USER_GRID = (10, 40)
TIMING_ROUNDS = 5

#: Cores this process may actually use -- the ceiling for process scaling.
AVAILABLE_CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)


def _build_world(seed=4021, users=MAX_USERS):
    scenario = make_synthetic_scenario(
        rows=16, cols=16, sigmoid_a=0.95, sigmoid_b=100.0, seed=seed, extent_meters=1600.0
    )
    encoding = HuffmanEncodingScheme().build(scenario.probabilities)
    group = BilinearGroup(prime_bits=64, rng=random.Random(seed + 1), pairing_work_factor=0)
    hve = HVE(width=encoding.reference_length, group=group, rng=random.Random(seed + 2))
    keys = hve.setup()
    rng = random.Random(seed + 3)
    candidates = [
        MatchCandidate(
            user_id=f"user-{i:05d}",
            ciphertext=hve.encrypt(keys.public, encoding.index_of(rng.randrange(scenario.grid.n_cells))),
        )
        for i in range(users)
    ]
    return scenario, encoding, hve, keys, candidates


def _workloads(scenario, encoding, hve, keys):
    """Alert workloads spanning the token-count axis of the grid."""
    compact_zone = scenario.workloads.triggered_radius_workload(50.0, 1).zones[0]
    wide_zones = scenario.workloads.triggered_radius_workload(220.0, 2).zones
    workloads = {}
    compact_tokens = hve.generate_tokens(keys.secret, encoding.token_patterns(list(compact_zone.cell_ids)))
    workloads["compact-zone"] = [TokenBatch(alert_id="compact", tokens=tuple(compact_tokens))]
    wide_batches = []
    for i, zone in enumerate(wide_zones):
        tokens = hve.generate_tokens(keys.secret, encoding.token_patterns(list(zone.cell_ids)))
        wide_batches.append(TokenBatch(alert_id=f"wide-{i}", tokens=tuple(tokens)))
    workloads["wide-batch"] = wide_batches
    return workloads


def _time_strategy(hve, options, batches, candidates):
    """Best-of-N wall clock for one matching round, plus its pairing count."""
    engine = MatchingEngine(hve, options)
    counter = hve.group.counter
    before = counter.total
    notifications = engine.match(batches, candidates)
    pairings = counter.total - before
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        engine.match(batches, candidates)
        best = min(best, time.perf_counter() - start)
    return notifications, pairings, best


def test_matching_engine_throughput_grid():
    scenario, encoding, hve, keys, all_candidates = _build_world()
    workloads = _workloads(scenario, encoding, hve, keys)

    rows = []
    speedups = {}
    for workload_name, batches in workloads.items():
        n_tokens = sum(len(b.tokens) for b in batches)
        for n_users in USER_GRID:
            candidates = all_candidates[:n_users]
            naive_notes, naive_pairings, naive_secs = _time_strategy(
                hve, MatchingOptions(strategy="naive"), batches, candidates
            )
            planned_notes, planned_pairings, planned_secs = _time_strategy(
                hve, MatchingOptions(strategy="planned"), batches, candidates
            )
            assert planned_notes == naive_notes  # outcome parity before we trust the timing
            speedup = naive_secs / planned_secs if planned_secs > 0 else float("inf")
            speedups[(workload_name, n_users)] = speedup
            rows.append(
                {
                    "workload": workload_name,
                    "users": n_users,
                    "tokens": n_tokens,
                    "naive_ms": round(naive_secs * 1e3, 3),
                    "planned_ms": round(planned_secs * 1e3, 3),
                    "speedup": round(speedup, 2),
                    "naive_pairings": naive_pairings,
                    "planned_pairings": planned_pairings,
                    "notified": len(planned_notes),
                }
            )

    publish_table(
        "matching_engine_throughput",
        f"Matching engine throughput: naive vs planned (work factor 0, best of {TIMING_ROUNDS})",
        rows,
    )

    # Pairing counts can only shrink under the planned strategy's dedupe.
    for row in rows:
        assert row["planned_pairings"] <= row["naive_pairings"]
    # Acceptance floor: >= 2x on the 40-user compact-zone workload.  The
    # observed ratio is typically 3-5x; re-measure a couple of times before
    # failing so a CPU-steal spike on a shared runner cannot flake the build.
    floor = 2.0
    speedup = speedups[("compact-zone", MAX_USERS)]
    compact_batches = workloads["compact-zone"]
    for _ in range(2):
        if speedup >= floor:
            break
        _, _, naive_secs = _time_strategy(hve, MatchingOptions(strategy="naive"), compact_batches, all_candidates)
        _, _, planned_secs = _time_strategy(hve, MatchingOptions(strategy="planned"), compact_batches, all_candidates)
        speedup = max(speedup, naive_secs / planned_secs)
    assert speedup >= floor


#: Assert floor for the fused tier; the observed ratio is typically >= 5x.
FUSED_TIER_FLOOR = 3.0
#: The always-run tier; set REPRO_BENCH_LARGE=1 to add the 10k-user tier.
FUSED_TIER_USERS = 1000


def _time_fused_tier(hve, keys, batches, candidates):
    """One fused-vs-scalar comparison at a tier, with warm costs split out.

    Returns a dict of measurements: the scalar planned path and the fused
    packed path are timed warm (plan compiled, precomputation tables and
    packed columns resident -- the cold pass is reported separately as the
    build cost), and parity of notifications and pairing totals is asserted
    before any timing is trusted.
    """
    warm_table_s = hve.warm_precomputation(keys.public, keys.secret)
    counter = hve.group.counter

    fused_engine = MatchingEngine(hve, MatchingOptions())
    before = counter.total
    started = time.perf_counter()
    fused_notes = fused_engine.match(batches, candidates)  # cold: plan + packing
    cold_secs = time.perf_counter() - started
    fused_pairings = counter.total - before
    fused_secs = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        fused_engine.match(batches, candidates)
        fused_secs = min(fused_secs, time.perf_counter() - started)

    scalar_notes, scalar_pairings, scalar_secs = _time_strategy(
        hve, MatchingOptions(fused=False), batches, candidates
    )
    assert fused_notes == scalar_notes  # outcome parity before we trust timing
    assert fused_pairings == scalar_pairings  # bit-exact charge parity
    return {
        "scalar_secs": scalar_secs,
        "fused_secs": fused_secs,
        "speedup": scalar_secs / fused_secs if fused_secs > 0 else float("inf"),
        "pack_build_ms": max(cold_secs - fused_secs, 0.0) * 1e3,
        "warm_table_ms": warm_table_s * 1e3,
        "pairings": fused_pairings,
        "notified": len(fused_notes),
        "fused_evals": fused_engine.last_pass.fused_evals,
        "precomp_hits": fused_engine.last_pass.precomp_hits,
    }


def test_crypto_core_fused_tier():
    """1k-user tier: the fused packed path vs the scalar planned path.

    Work factor 0 isolates evaluation dispatch (with work factor on, both
    paths burn identical pairing work by the bit-exactness contract and the
    ratio trends to 1x).  Precomputation and packed columns are warmed before
    timing; their build costs land in separate columns.  The acceptance floor
    is ``FUSED_TIER_FLOOR`` at the 1k tier on the reference backend; the
    calibrated fused latency feeds the CI perf gate via the ``crypto_core``
    section of BENCH_provider.json.
    """
    tiers = [FUSED_TIER_USERS]
    if os.environ.get("REPRO_BENCH_LARGE"):
        tiers.append(10 * FUSED_TIER_USERS)
    scenario, encoding, hve, keys, candidates = _build_world(users=max(tiers))
    batches = _workloads(scenario, encoding, hve, keys)["wide-batch"]
    n_tokens = sum(len(b.tokens) for b in batches)
    calibration = calibration_ms()

    rows = []
    by_tier = {}
    for users in tiers:
        measured = _time_fused_tier(hve, keys, batches, candidates[:users])
        by_tier[users] = measured
        rows.append(
            {
                "users": users,
                "tokens": n_tokens,
                "scalar_ms": round(measured["scalar_secs"] * 1e3, 3),
                "fused_ms": round(measured["fused_secs"] * 1e3, 3),
                "speedup": round(measured["speedup"], 2),
                "pack_build_ms": round(measured["pack_build_ms"], 3),
                "warm_table_ms": round(measured["warm_table_ms"], 3),
                "pairings": measured["pairings"],
                "notified": measured["notified"],
                "fused_evals": measured["fused_evals"],
                "precomp_hits": measured["precomp_hits"],
            }
        )
    publish_table(
        "crypto_core_fused",
        f"Crypto core: fused packed worklist vs scalar planned path "
        f"(work factor 0, warm, best of {TIMING_ROUNDS})",
        rows,
    )

    tier = by_tier[FUSED_TIER_USERS]
    speedup = tier["speedup"]
    # Re-measure before failing: the floor leaves >1.5x of margin over the
    # typical ratio, so only a CPU-steal spike on a shared runner trips it,
    # and a fresh comparison (both paths, same process) settles that.
    for _ in range(2):
        if speedup >= FUSED_TIER_FLOOR:
            break
        fresh = _time_fused_tier(hve, keys, batches, candidates[:FUSED_TIER_USERS])
        speedup = max(speedup, fresh["speedup"])
    assert speedup >= FUSED_TIER_FLOOR, (
        f"fused packed path {speedup:.2f}x over scalar planned at the "
        f"{FUSED_TIER_USERS}-user tier; floor is {FUSED_TIER_FLOOR}x"
    )

    merge_bench_provider(
        "crypto_core",
        {
            "kind": "crypto_core_fused_bench",
            "workload": {
                "users": FUSED_TIER_USERS,
                "tokens": n_tokens,
                "zones": 2,
                "radius_m": 220.0,
                "work_factor": 0,
                "prime_bits": 64,
            },
            "calibration_ms": round(calibration, 3),
            "fused_tier": {
                "fused_ms": round(tier["fused_secs"] * 1e3, 3),
                "scalar_ms": round(tier["scalar_secs"] * 1e3, 3),
                "speedup": round(tier["speedup"], 2),
                "pack_build_ms": round(tier["pack_build_ms"], 3),
                "pairings": tier["pairings"],
            },
        },
    )


def _build_work_factor_world(backend, work_factor=40, users=40, seed=4099):
    """A workload where simulated pairing cost dominates, on one backend.

    All backends share the same primes (generated once by a reference probe)
    and the same-seeded rngs, so key material, ciphertexts and therefore
    match outcomes and pairing counts are bit-identical across backends --
    the only thing that may differ is wall-clock.
    """
    scenario = make_synthetic_scenario(
        rows=16, cols=16, sigmoid_a=0.95, sigmoid_b=100.0, seed=seed, extent_meters=1600.0
    )
    encoding = HuffmanEncodingScheme().build(scenario.probabilities)
    probe = BilinearGroup(prime_bits=64, rng=random.Random(seed + 1))
    group = BilinearGroup.from_primes(
        int(probe.p),
        int(probe.q),
        pairing_work_factor=work_factor,
        backend=backend,
        rng=random.Random(seed + 2),
    )
    hve = HVE(width=encoding.reference_length, group=group, rng=random.Random(seed + 3))
    keys = hve.setup()
    rng = random.Random(seed + 4)
    candidates = [
        MatchCandidate(
            user_id=f"user-{i:03d}",
            ciphertext=hve.encrypt(keys.public, encoding.index_of(rng.randrange(scenario.grid.n_cells))),
        )
        for i in range(users)
    ]
    zones = scenario.workloads.triggered_radius_workload(220.0, 2).zones
    batches = []
    for i, zone in enumerate(zones):
        tokens = hve.generate_tokens(keys.secret, encoding.token_patterns(list(zone.cell_ids)))
        batches.append(TokenBatch(alert_id=f"zone-{i}", tokens=tuple(tokens)))
    return hve, candidates, batches


def test_backend_executor_scaling():
    """Throughput grid across crypto backends and executors (work factor on).

    Acceptance invariants (checked on every host): identical notifications
    and bit-exact pairing totals across all backends, executors and worker
    counts.  Wall-clock acceptance (process executor with 4 workers >= 2x the
    single-worker planned path, pure-Python backend) requires real cores --
    it is asserted when >= 4 are available and recorded otherwise, since a
    process pool cannot beat a single worker on hardware that cannot run the
    workers concurrently.
    """
    configurations = [
        ("single", MatchingOptions(strategy="planned")),
        ("thread-4", MatchingOptions(strategy="planned", workers=4, executor="thread")),
        ("process-4", MatchingOptions(strategy="planned", workers=4, executor="process")),
    ]
    rows = []
    wall = {}
    baseline = None  # (notification keys, pairings) of the first run, for parity
    for backend in available_backends():
        hve, candidates, batches = _build_work_factor_world(backend)
        # Warm the fixed-base work table before any timing; its build cost is
        # reported as its own column instead of polluting the first flavour.
        precomp_build_ms = hve.group.warm_precomputation() * 1e3
        for label, options in configurations:
            engine = MatchingEngine(hve, options)
            counter = hve.group.counter
            before = counter.total
            notifications = engine.match(batches, candidates)
            pairings = counter.total - before
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                engine.match(batches, candidates)
                best = min(best, time.perf_counter() - start)
            outcome = (tuple((n.user_id, n.alert_id) for n in notifications), pairings)
            if baseline is None:
                baseline = outcome
            assert outcome == baseline  # parity across backends AND executors
            wall[(backend, label)] = best
            rows.append(
                {
                    "backend": backend,
                    "executor": label,
                    "users": len(candidates),
                    "tokens": sum(len(b.tokens) for b in batches),
                    "wall_ms": round(best * 1e3, 1),
                    "speedup_vs_single": round(wall[(backend, "single")] / best, 2),
                    "precomp_build_ms": round(precomp_build_ms, 2),
                    "pairings": pairings,
                    "notified": len(notifications),
                    "cores": AVAILABLE_CORES,
                }
            )

    publish_table(
        "matching_engine_scaling",
        f"Backend x executor scaling, work factor on (best of 2, {AVAILABLE_CORES} cores available)",
        rows,
    )

    speedup = wall[("reference", "single")] / wall[("reference", "process-4")]
    if AVAILABLE_CORES >= 4:
        # Re-measure up to three times before failing: shared CI runners
        # expose exactly 4 vCPUs with noisy neighbors, and a CPU-steal spike
        # during one process-pool run must not flake the build.
        for _ in range(3):
            if speedup >= 2.0:
                break
            hve, candidates, batches = _build_work_factor_world("reference")
            single = MatchingEngine(hve, MatchingOptions(strategy="planned"))
            process = MatchingEngine(
                hve, MatchingOptions(strategy="planned", workers=4, executor="process")
            )
            start = time.perf_counter()
            single.match(batches, candidates)
            single_secs = time.perf_counter() - start
            start = time.perf_counter()
            process.match(batches, candidates)
            speedup = max(speedup, single_secs / (time.perf_counter() - start))
        assert speedup >= 2.0


def test_worker_scaling_smoke():
    """Multi-worker matching produces identical output; timings go on record."""
    scenario, encoding, hve, keys, candidates = _build_world(seed=4077)
    batches = _workloads(scenario, encoding, hve, keys)["compact-zone"]
    serial = MatchingEngine(hve, MatchingOptions(strategy="planned")).match(batches, candidates)
    rows = []
    for workers in (1, 2, 4):
        options = MatchingOptions(strategy="planned", workers=workers, chunk_size=8)
        notifications, pairings, secs = _time_strategy(hve, options, batches, candidates)
        assert notifications == serial
        rows.append({"workers": workers, "wall_ms": round(secs * 1e3, 3), "pairings": pairings})
    publish_table(
        "matching_engine_workers",
        "Planned matching with worker threads (GIL-bound backend: parity check + overhead record)",
        rows,
    )
