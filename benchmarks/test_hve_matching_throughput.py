"""Wall-clock benchmark of the actual HVE matching path at the service provider.

The figure-level benchmarks count pairings analytically (that is the paper's
metric); this module additionally times the *real* cryptographic path --
encryption, token generation and ciphertext matching -- so the relationship
between pairing counts and wall-clock time on this backend is on record.  The
pairing work factor of the group can be raised to emulate the cost profile of
a production pairing library.
"""

import random

import pytest

from benchmarks.conftest import publish_table
from repro.crypto.group import BilinearGroup
from repro.crypto.hve import HVE
from repro.datasets.synthetic import make_synthetic_scenario
from repro.encoding.fixed_length import FixedLengthEncodingScheme
from repro.encoding.huffman import HuffmanEncodingScheme

NUM_USERS = 40
RADIUS = 50.0


def _build_system(scheme_factory, scenario, seed):
    encoding = scheme_factory().build(scenario.probabilities)
    group = BilinearGroup(prime_bits=64, rng=random.Random(seed), pairing_work_factor=4)
    hve = HVE(width=encoding.reference_length, group=group, rng=random.Random(seed + 1))
    keys = hve.setup()
    rng = random.Random(seed + 2)
    ciphertexts = []
    for _ in range(NUM_USERS):
        cell = rng.randrange(scenario.grid.n_cells)
        ciphertexts.append(hve.encrypt(keys.public, encoding.index_of(cell)))
    return encoding, hve, keys, ciphertexts


@pytest.mark.parametrize("scheme_name,scheme_factory", [("huffman", HuffmanEncodingScheme), ("fixed", FixedLengthEncodingScheme)])
def test_matching_throughput(benchmark, scheme_name, scheme_factory):
    scenario = make_synthetic_scenario(rows=16, cols=16, sigmoid_a=0.95, sigmoid_b=100.0, seed=2033, extent_meters=1600.0)
    encoding, hve, keys, ciphertexts = _build_system(scheme_factory, scenario, seed=2034)
    zone = scenario.workloads.triggered_radius_workload(RADIUS, 1).zones[0]
    patterns = encoding.token_patterns(list(zone.cell_ids))
    tokens = hve.generate_tokens(keys.secret, patterns)

    # Warm the precomputation tables (fixed-base work table, encrypt/token
    # programs) before timing, so the benchmark measures the steady state and
    # the one-off build cost is a column of its own.
    precomp_build_ms = hve.warm_precomputation(keys.public, keys.secret) * 1e3

    def match_all():
        return sum(1 for ciphertext in ciphertexts if hve.matches_any(ciphertext, tokens))

    # Measure the pairing cost of one matching round exactly, then benchmark.
    counter = hve.group.counter
    before = counter.total
    matched = match_all()
    pairings_per_round = counter.total - before
    benchmark(match_all)

    publish_table(
        f"hve_matching_{scheme_name}",
        f"HVE matching throughput ({scheme_name} encoding, {NUM_USERS} users, one compact zone)",
        [
            {
                "scheme": scheme_name,
                "tokens": len(tokens),
                "non_star_bits": sum(t.non_star_count for t in tokens),
                "matched_users": matched,
                "approx_pairings_per_matching_round": int(pairings_per_round),
                "precomp_build_ms": round(precomp_build_ms, 2),
            }
        ],
    )

    assert matched >= 0
    assert len(tokens) >= 1
