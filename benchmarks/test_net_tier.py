"""Network-tier benchmark: open-loop sweep against a live ``repro serve``.

This is the honest end of the load story: the server is a **separate
process** started exactly as an operator would start it (``python -m repro
serve``), the generator is the open-loop harness of
:mod:`repro.net.loadgen` (Poisson arrivals, latency measured from each
request's scheduled instant), and the sweep covers five offered-load points
so the table shows the latency knee, not a single flattering number.

The run feeds the perf gate twice: the ``net_tier`` section of
``BENCH_provider.json`` carries the p99 pooled over the sweep's clean
uncongested points *and* the sweep's saturation throughput, both calibrated
against the host-speed constant; ``benchmarks/check_perf_baseline.py``
fails CI when the p99 regresses or the saturation drops more than 25%
against the committed baseline.

The ablation run answers "what did stage overlap buy": the same burst fired
at a ``--serial`` server (identical tick batching, coalescing and
group-commit semantics, no stage overlap) and at the default pipelined one,
best-of-N reps per mode, published side by side with an explicit measured
verdict in ``results/net_tier_ablation.txt``.  The measured answer on this
workload is *nothing* -- the PR 9 throughput gain lives in tick batching +
group-commit, which both modes share -- and the artifact says so.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.datasets.synthetic import make_synthetic_scenario
from repro.net.loadgen import publish_sweep, render_table, run_sweep

from benchmarks.conftest import calibration_ms, merge_bench_provider, RESULTS_DIR

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ROWS = COLS = 6
SCENARIO_SEED = 31
SERVICE_SEED = 11
PRIME_BITS = 32
RATES = (40.0, 80.0, 160.0, 320.0, 640.0)
DURATION = 1.5
ABLATION_RATES = (320.0, 640.0, 1280.0, 2560.0)
ABLATION_DURATION = 1.5
ABLATION_REPS = 3


@contextlib.contextmanager
def _serve(extra_args=()):
    """A real ``repro serve`` subprocess; yields (host, port), stops it after."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--rows", str(ROWS), "--cols", str(COLS),
            "--sigmoid-a", "0.9", "--sigmoid-b", "20",
            "--seed", str(SCENARIO_SEED),
            "--host", "127.0.0.1", "--port", "0",
            "--prime-bits", str(PRIME_BITS),
            "--service-seed", str(SERVICE_SEED),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.time() + 120.0
    while time.time() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            port = int(line.rsplit(":", 1)[1])
            break
        if not line and process.poll() is not None:
            break
    if port is None:
        process.kill()
        pytest.fail("repro serve never reported readiness")
    try:
        yield ("127.0.0.1", port)
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()


@pytest.fixture(scope="module")
def served_endpoint():
    with _serve() as endpoint:
        yield endpoint


@pytest.fixture(scope="module")
def scenario():
    # Must match the scenario the served process builds from the same flags
    # (the CLI uses the default extent).
    return make_synthetic_scenario(
        rows=ROWS, cols=COLS, sigmoid_a=0.9, sigmoid_b=20, seed=SCENARIO_SEED
    )


def _sweep(host, port, scenario, rates, duration):
    return asyncio.run(
        run_sweep(
            host,
            port,
            scenario,
            rates=rates,
            duration=duration,
            seed=7,
            users=16,
            connections=4,
            prime_bits=PRIME_BITS,
            service_seed=SERVICE_SEED,
        )
    )


def test_net_tier_open_loop_sweep(served_endpoint, scenario):
    host, port = served_endpoint
    sweep = _sweep(host, port, scenario, RATES, DURATION)
    table = render_table(sweep)
    print("\n" + table)
    publish_sweep(sweep, RESULTS_DIR)

    assert len(sweep.points) >= 5, "the sweep must cover at least 5 offered-load points"
    # The two uncongested points must be clean: an open-loop harness that
    # drops requests at trivial load is measuring its own bugs.
    for point in sorted(sweep.points, key=lambda p: p.rate)[:2]:
        assert point.dropped == 0, f"dropped requests at {point.rate} rps:\n{table}"
        assert point.p99_ms > 0.0
    assert sweep.saturation_rps > 0

    merge_bench_provider(
        "net_tier",
        {
            **sweep.to_json(),
            "calibration_ms": calibration_ms(),
        },
    )


def _median_p99(sweep) -> float:
    ordered = sorted(p.p99_ms for p in sweep.points)
    return ordered[len(ordered) // 2] if ordered else 0.0


def _best_ablation_sweep(scenario, extra_args):
    """Best of ``ABLATION_REPS`` fresh-server sweeps, ranked by median p99.

    One rep on a shared box is a coin flip -- a background compile during
    either server's run flips the comparison (an earlier committed artifact
    showed serial 2-3x worse purely from run-order contention, the refresh
    showed the opposite).  Taking the rep with the lower median p99 per mode
    discards contention, which only ever adds latency.
    """
    sweeps = []
    for _ in range(ABLATION_REPS):
        with _serve(extra_args) as (host, port):
            sweeps.append(_sweep(host, port, scenario, ABLATION_RATES, ABLATION_DURATION))
    return min(sweeps, key=_median_p99)


def test_net_tier_pipelined_vs_serial_ablation(scenario):
    """What stage overlap buys: the same burst against ``--serial``.

    The serial server shares every tick semantic (admission, coalescing,
    group commit) and differs only in running admit -> execute -> send
    back-to-back; the default server double-buffers the stages.  Servers
    are fresh spawns (a sweep subscribes its user fleet, so an
    already-driven server cannot be reused), each mode runs
    ``ABLATION_REPS`` times and keeps its quietest rep, and the rates push
    well past the gated sweep's top so the comparison covers overload, not
    just the uncongested regime.

    **Measured finding (kept honest in the published artifact):** on this
    single-process deployment the two modes are within noise of each other
    at every rate.  The throughput win over PR 8 (~309 -> ~600+ rps) comes
    from tick batching and journal group-commit, which ``--serial`` shares;
    the stage *overlap* itself buys nothing measurable here because the
    admit/journal and execute stages are both GIL-bound Python (the only
    overlappable blocking work, the per-tick fsync, is ~0.15ms on local
    disk) -- overlap can only pay on genuinely slow durable storage.  The
    artifact states the measured verdict rather than assuming the design
    won; the floor assertion only guards against the pipeline *costing*
    throughput.
    """
    pipelined = _best_ablation_sweep(scenario, ())
    serial = _best_ablation_sweep(scenario, ("--serial",))

    ratio = pipelined.saturation_rps / max(serial.saturation_rps, 1e-9)
    p99_ratio = _median_p99(pipelined) / max(_median_p99(serial), 1e-9)
    if ratio >= 1.15:
        throughput_verdict = f"stage overlap ADDS throughput ({ratio:.2f}x serial)"
    elif ratio <= 0.87:
        throughput_verdict = f"stage overlap COSTS throughput ({ratio:.2f}x serial)"
    else:
        throughput_verdict = (
            f"stage overlap buys NO throughput ({ratio:.2f}x serial).  Both modes "
            "share tick batching + journal group-commit -- that is where the PR 9 "
            "gain over PR 8 lives; admit/journal and execute are both GIL-bound "
            "Python, so double-buffering them cannot add CPU throughput, and the "
            "only blocking stage work (fsync) is too fast on local disk (~0.15ms) "
            "to be worth hiding.  Overlap is expected to pay only on slow durable "
            "storage (see the chaos fsync_delay site)"
        )
    if p99_ratio >= 1.3:
        latency_verdict = (
            f"serial shows the better tail (median p99 {p99_ratio:.2f}x): the "
            "double buffer admits an extra tick, so overload queues one tick deeper"
        )
    elif p99_ratio <= 0.77:
        latency_verdict = f"pipelined shows the better tail (median p99 {p99_ratio:.2f}x serial)"
    else:
        latency_verdict = f"tail latency is comparable (median p99 {p99_ratio:.2f}x serial)"
    verdict = f"verdict: {throughput_verdict}.\n{latency_verdict}."

    lines = [
        f"pipelined (default), best of {ABLATION_REPS} reps by median p99",
        render_table(pipelined), "",
        f"serial (--serial), best of {ABLATION_REPS} reps by median p99",
        render_table(serial), "",
        f"saturation: pipelined {pipelined.saturation_rps:.1f} rps "
        f"vs serial {serial.saturation_rps:.1f} rps ({ratio:.2f}x)", "",
        verdict,
    ]
    report = "\n".join(lines)
    print("\n" + report)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "net_tier_ablation.txt").write_text(report + "\n", encoding="utf-8")

    assert serial.saturation_rps > 0 and pipelined.saturation_rps > 0
    # Sanity floor, not the perf claim: the pipeline must never *cost*
    # meaningful throughput against its own serial ablation.
    assert pipelined.saturation_rps >= 0.7 * serial.saturation_rps
