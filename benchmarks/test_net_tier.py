"""Network-tier benchmark: open-loop sweep against a live ``repro serve``.

This is the honest end of the load story: the server is a **separate
process** started exactly as an operator would start it (``python -m repro
serve``), the generator is the open-loop harness of
:mod:`repro.net.loadgen` (Poisson arrivals, latency measured from each
request's scheduled instant), and the sweep covers five offered-load points
so the table shows the latency knee, not a single flattering number.

The run feeds the perf gate twice: the ``net_tier`` section of
``BENCH_provider.json`` carries the p99 at the lowest (uncongested) rate
*and* the sweep's saturation throughput, both calibrated against the
host-speed constant; ``benchmarks/check_perf_baseline.py`` fails CI when the
p99 regresses or the saturation drops more than 25% against the committed
baseline.

The ablation run answers "what did the pipeline buy": the same burst fired
at a ``--serial`` server (identical tick batching and coalescing semantics,
no stage overlap) and at the default pipelined one, published side by side
in ``results/net_tier_ablation.txt``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.datasets.synthetic import make_synthetic_scenario
from repro.net.loadgen import publish_sweep, render_table, run_sweep

from benchmarks.conftest import calibration_ms, merge_bench_provider, RESULTS_DIR

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ROWS = COLS = 6
SCENARIO_SEED = 31
SERVICE_SEED = 11
PRIME_BITS = 32
RATES = (40.0, 80.0, 160.0, 320.0, 640.0)
DURATION = 1.5
ABLATION_RATES = (160.0, 320.0, 640.0)
ABLATION_DURATION = 1.0


@contextlib.contextmanager
def _serve(extra_args=()):
    """A real ``repro serve`` subprocess; yields (host, port), stops it after."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--rows", str(ROWS), "--cols", str(COLS),
            "--sigmoid-a", "0.9", "--sigmoid-b", "20",
            "--seed", str(SCENARIO_SEED),
            "--host", "127.0.0.1", "--port", "0",
            "--prime-bits", str(PRIME_BITS),
            "--service-seed", str(SERVICE_SEED),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.time() + 120.0
    while time.time() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            port = int(line.rsplit(":", 1)[1])
            break
        if not line and process.poll() is not None:
            break
    if port is None:
        process.kill()
        pytest.fail("repro serve never reported readiness")
    try:
        yield ("127.0.0.1", port)
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()


@pytest.fixture(scope="module")
def served_endpoint():
    with _serve() as endpoint:
        yield endpoint


@pytest.fixture(scope="module")
def scenario():
    # Must match the scenario the served process builds from the same flags
    # (the CLI uses the default extent).
    return make_synthetic_scenario(
        rows=ROWS, cols=COLS, sigmoid_a=0.9, sigmoid_b=20, seed=SCENARIO_SEED
    )


def _sweep(host, port, scenario, rates, duration):
    return asyncio.run(
        run_sweep(
            host,
            port,
            scenario,
            rates=rates,
            duration=duration,
            seed=7,
            users=16,
            connections=4,
            prime_bits=PRIME_BITS,
            service_seed=SERVICE_SEED,
        )
    )


def test_net_tier_open_loop_sweep(served_endpoint, scenario):
    host, port = served_endpoint
    sweep = _sweep(host, port, scenario, RATES, DURATION)
    table = render_table(sweep)
    print("\n" + table)
    publish_sweep(sweep, RESULTS_DIR)

    assert len(sweep.points) >= 5, "the sweep must cover at least 5 offered-load points"
    # The two uncongested points must be clean: an open-loop harness that
    # drops requests at trivial load is measuring its own bugs.
    for point in sorted(sweep.points, key=lambda p: p.rate)[:2]:
        assert point.dropped == 0, f"dropped requests at {point.rate} rps:\n{table}"
        assert point.p99_ms > 0.0
    assert sweep.saturation_rps > 0

    merge_bench_provider(
        "net_tier",
        {
            **sweep.to_json(),
            "calibration_ms": calibration_ms(),
        },
    )


def test_net_tier_pipelined_vs_serial_ablation(scenario):
    """What stage overlap buys: the same burst against ``--serial``.

    The serial server shares every tick semantic (admission, coalescing,
    group commit) and differs only in running admit -> execute -> send
    back-to-back; the default server double-buffers the stages.  Both
    servers are fresh spawns (a sweep subscribes its user fleet, so an
    already-driven server cannot be reused).  The floor assertion is
    deliberately loose -- a shared-CI box is noisy -- the real bound on
    pipelined throughput is the calibrated ``saturation_rps`` perf gate
    above.
    """
    with _serve() as (host, port):
        pipelined = _sweep(host, port, scenario, ABLATION_RATES, ABLATION_DURATION)
    with _serve(("--serial",)) as (serial_host, serial_port):
        serial = _sweep(serial_host, serial_port, scenario, ABLATION_RATES, ABLATION_DURATION)

    lines = ["pipelined (default)", render_table(pipelined), "", "serial (--serial)",
             render_table(serial), "",
             f"saturation: pipelined {pipelined.saturation_rps:.1f} rps "
             f"vs serial {serial.saturation_rps:.1f} rps "
             f"({pipelined.saturation_rps / max(serial.saturation_rps, 1e-9):.2f}x)"]
    report = "\n".join(lines)
    print("\n" + report)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "net_tier_ablation.txt").write_text(report + "\n", encoding="utf-8")

    assert serial.saturation_rps > 0 and pipelined.saturation_rps > 0
    # Sanity floor, not the perf claim: the pipeline must never *cost*
    # meaningful throughput against its own serial ablation.
    assert pipelined.saturation_rps >= 0.7 * serial.saturation_rps
