"""Network-tier benchmark: open-loop sweep against a live ``repro serve``.

This is the honest end of the load story: the server is a **separate
process** started exactly as an operator would start it (``python -m repro
serve``), the generator is the open-loop harness of
:mod:`repro.net.loadgen` (Poisson arrivals, latency measured from each
request's scheduled instant), and the sweep covers four offered-load points
so the table shows the latency knee, not a single flattering number.

The run feeds the perf gate: the ``net_tier`` section of
``BENCH_provider.json`` carries the p99 at the lowest (uncongested) rate,
calibrated against the host-speed constant, and
``benchmarks/check_perf_baseline.py`` fails CI when it regresses more than
25% against the committed baseline.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.datasets.synthetic import make_synthetic_scenario
from repro.net.loadgen import publish_sweep, render_table, run_sweep

from benchmarks.conftest import calibration_ms, merge_bench_provider, RESULTS_DIR

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ROWS = COLS = 6
SCENARIO_SEED = 31
SERVICE_SEED = 11
PRIME_BITS = 32
RATES = (40.0, 80.0, 160.0, 320.0)
DURATION = 1.5


@pytest.fixture(scope="module")
def served_endpoint():
    """A real ``repro serve`` subprocess; yields (host, port), stops it after."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--rows", str(ROWS), "--cols", str(COLS),
            "--sigmoid-a", "0.9", "--sigmoid-b", "20",
            "--seed", str(SCENARIO_SEED),
            "--host", "127.0.0.1", "--port", "0",
            "--prime-bits", str(PRIME_BITS),
            "--service-seed", str(SERVICE_SEED),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.time() + 120.0
    while time.time() < deadline:
        line = process.stdout.readline()
        if line.startswith("listening on "):
            port = int(line.rsplit(":", 1)[1])
            break
        if not line and process.poll() is not None:
            break
    if port is None:
        process.kill()
        pytest.fail("repro serve never reported readiness")
    try:
        yield ("127.0.0.1", port)
    finally:
        import signal

        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()


def test_net_tier_open_loop_sweep(served_endpoint):
    host, port = served_endpoint
    # Must match the scenario the served process builds from the same flags
    # (the CLI uses the default extent).
    scenario = make_synthetic_scenario(
        rows=ROWS, cols=COLS, sigmoid_a=0.9, sigmoid_b=20, seed=SCENARIO_SEED
    )
    sweep = asyncio.run(
        run_sweep(
            host,
            port,
            scenario,
            rates=RATES,
            duration=DURATION,
            seed=7,
            users=16,
            connections=4,
            prime_bits=PRIME_BITS,
            service_seed=SERVICE_SEED,
        )
    )
    table = render_table(sweep)
    print("\n" + table)
    publish_sweep(sweep, RESULTS_DIR)

    assert len(sweep.points) >= 4, "the sweep must cover at least 4 offered-load points"
    # The two uncongested points must be clean: an open-loop harness that
    # drops requests at trivial load is measuring its own bugs.
    for point in sorted(sweep.points, key=lambda p: p.rate)[:2]:
        assert point.dropped == 0, f"dropped requests at {point.rate} rps:\n{table}"
        assert point.p99_ms > 0.0
    assert sweep.saturation_rps > 0

    merge_bench_provider(
        "net_tier",
        {
            **sweep.to_json(),
            "calibration_ms": calibration_ms(),
        },
    )
