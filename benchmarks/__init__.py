"""Benchmark harness reproducing every table and figure of the paper's evaluation.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each module regenerates one figure of Section 7 (or an ablation that backs a
design choice listed in DESIGN.md): it computes the same series the paper
plots, prints the rows, saves them under ``benchmarks/results/`` and feeds a
representative computation to pytest-benchmark so wall-clock numbers are
tracked as well.
"""
